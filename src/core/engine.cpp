#include "core/engine.hpp"

#include <algorithm>

#include "core/soa_scan.hpp"
#include "util/logging.hpp"

namespace rcpn::core {

Engine::Engine(Net& net, EngineOptions options) : net_(net), options_(options) {}

// ---------------------------------------------------------------------------
// Static extraction ("simulator generation")
// ---------------------------------------------------------------------------

void Engine::compute_sorted_transitions() {
  // Fig 6: for every place and instruction type, collect the transitions of
  // that type's sub-net triggered from the place, sorted by arc priority.
  const unsigned np = net_.num_places();
  const unsigned nt = net_.num_types();
  sorted_.assign(static_cast<std::size_t>(np) * nt, {});
  for (unsigned ti = 0; ti < net_.num_transitions(); ++ti) {
    const Transition& t = net_.transition(static_cast<TransitionId>(ti));
    if (t.independent()) continue;
    const PlaceId p = t.trigger_place();
    assert(p != kNoPlace && "sub-net transition without trigger arc");
    sorted_[static_cast<std::size_t>(p) * nt + static_cast<unsigned>(t.subnet())]
        .push_back(&t);
  }
  for (auto& list : sorted_) {
    std::stable_sort(list.begin(), list.end(),
                     [](const Transition* a, const Transition* b) {
                       return a->trigger_priority() < b->trigger_priority();
                     });
  }
}

void Engine::compute_process_order() {
  // Token-flow graph over places: trigger place -> every output place the
  // instruction token can move to. Reservation-emitting arcs are excluded:
  // reservation tokens are ready-gated to the next cycle, so they cannot
  // create same-cycle ordering hazards (the branch sub-net's L1 loop in
  // Fig 5 must not force two-list onto the fetch latch).
  const unsigned np = net_.num_places();
  std::vector<std::vector<PlaceId>> succ(np);
  for (unsigned ti = 0; ti < net_.num_transitions(); ++ti) {
    const Transition& t = net_.transition(static_cast<TransitionId>(ti));
    if (t.independent()) continue;
    const PlaceId from = t.trigger_place();
    for (const OutArc& a : t.outputs())
      if (a.emit == ArcEmit::move) succ[static_cast<unsigned>(from)].push_back(a.place);
  }

  // Tarjan SCC. SCCs pop in reverse topological order of the condensation
  // (sinks first) — exactly the processing order Fig 8 requires.
  std::vector<int> index(np, -1), low(np, 0);
  std::vector<bool> on_stack(np, false), in_cycle(np, false);
  std::vector<PlaceId> stack;
  int next_index = 0;
  order_.clear();

  // Iterative Tarjan to stay safe for large generated nets.
  struct Frame {
    PlaceId v;
    unsigned child = 0;
  };
  std::vector<Frame> call;
  for (unsigned root = 0; root < np; ++root) {
    if (index[root] != -1) continue;
    call.push_back({static_cast<PlaceId>(root)});
    while (!call.empty()) {
      Frame& f = call.back();
      const unsigned v = static_cast<unsigned>(f.v);
      if (f.child == 0) {
        index[v] = low[v] = next_index++;
        stack.push_back(f.v);
        on_stack[v] = true;
      }
      bool descended = false;
      while (f.child < succ[v].size()) {
        const unsigned w = static_cast<unsigned>(succ[v][f.child]);
        ++f.child;
        if (index[w] == -1) {
          call.push_back({static_cast<PlaceId>(w)});
          descended = true;
          break;
        }
        if (on_stack[w]) low[v] = std::min(low[v], index[w]);
      }
      if (descended) continue;
      if (low[v] == index[v]) {
        // Pop one SCC; emit its places into the processing order.
        std::vector<PlaceId> comp;
        for (;;) {
          const PlaceId w = stack.back();
          stack.pop_back();
          on_stack[static_cast<unsigned>(w)] = false;
          comp.push_back(w);
          if (w == f.v) break;
        }
        const bool self_loop =
            comp.size() == 1 &&
            std::find(succ[static_cast<unsigned>(comp[0])].begin(),
                      succ[static_cast<unsigned>(comp[0])].end(),
                      comp[0]) != succ[static_cast<unsigned>(comp[0])].end();
        if (comp.size() > 1 || self_loop)
          for (PlaceId w : comp) in_cycle[static_cast<unsigned>(w)] = true;
        for (PlaceId w : comp) order_.push_back(w);
      }
      call.pop_back();
      if (!call.empty()) {
        Frame& parent = call.back();
        low[static_cast<unsigned>(parent.v)] =
            std::min(low[static_cast<unsigned>(parent.v)], low[v]);
      }
    }
  }

  // Two-list marking.
  //  (a) true token cycles: every place of a non-trivial SCC;
  //  (b) circular guard references (paper: state L3 in Fig 5): a transition
  //      triggered from p reads the state of s while s is reachable from p —
  //      the referenced stage gets two-list so guards observe previous-cycle
  //      contents.
  auto mark = [&](PlaceId p) {
    PipelineStage& st = net_.stage_of(p);
    if (!st.two_list_forced() && !st.is_end()) st.set_two_list(true);
  };
  for (unsigned p = 0; p < np; ++p) {
    PipelineStage& st = net_.stage_of(static_cast<PlaceId>(p));
    if (options_.force_two_list_all) {
      // Ablation semantics win over per-stage model overrides: *every*
      // stage double-buffers, the "usual, computationally expensive
      // solution" of §4.
      st.set_two_list(!st.is_end());
      continue;
    }
    if (st.two_list_forced()) continue;
    st.set_two_list(false);
  }
  if (!options_.force_two_list_all) {
    for (unsigned p = 0; p < np; ++p)
      if (in_cycle[p]) mark(static_cast<PlaceId>(p));
    if (options_.two_list_state_refs) {
      // Reachability from the trigger place to the referenced place.
      for (unsigned ti = 0; ti < net_.num_transitions(); ++ti) {
        const Transition& t = net_.transition(static_cast<TransitionId>(ti));
        if (t.independent() || t.state_refs().empty()) continue;
        const PlaceId from = t.trigger_place();
        std::vector<bool> seen(np, false);
        std::vector<PlaceId> work{from};
        seen[static_cast<unsigned>(from)] = true;
        while (!work.empty()) {
          const unsigned v = static_cast<unsigned>(work.back());
          work.pop_back();
          for (PlaceId w : succ[v]) {
            if (!seen[static_cast<unsigned>(w)]) {
              seen[static_cast<unsigned>(w)] = true;
              work.push_back(w);
            }
          }
        }
        for (PlaceId s : t.state_refs())
          if (seen[static_cast<unsigned>(s)]) mark(s);
      }
    }
  }

  two_list_stages_.clear();
  for (unsigned s = 0; s < net_.num_stages(); ++s)
    if (net_.stage(static_cast<StageId>(s)).two_list())
      two_list_stages_.push_back(static_cast<StageId>(s));

  // End places never hold tokens (retirement happens on entry): skip them in
  // the per-cycle processing loop.
  std::erase_if(order_, [this](PlaceId p) { return net_.stage_of(p).is_end(); });
}

void Engine::build() {
  compute_sorted_transitions();
  compute_process_order();
  place_stage_.resize(net_.num_places());
  place_delay_.resize(net_.num_places());
  for (unsigned p = 0; p < net_.num_places(); ++p) {
    place_stage_[p] = &net_.stage_of(static_cast<PlaceId>(p));
    place_delay_[p] = net_.place(static_cast<PlaceId>(p)).delay;
  }
  stats_.reset(net_.num_transitions(), net_.num_places());
#if RCPN_OBS
  if (options_.obs != nullptr) {
    // Capture the model identity the exporters need, so a hub outlives the
    // engine and exporting never touches the Net.
    obs::Meta meta;
    meta.model = net_.name();
    meta.stage_names.reserve(net_.num_stages());
    for (unsigned s = 0; s < net_.num_stages(); ++s)
      meta.stage_names.push_back(net_.stage(static_cast<StageId>(s)).name());
    meta.place_names.reserve(net_.num_places());
    meta.place_stage.reserve(net_.num_places());
    for (unsigned p = 0; p < net_.num_places(); ++p) {
      meta.place_names.push_back(net_.place(static_cast<PlaceId>(p)).name);
      meta.place_stage.push_back(net_.place(static_cast<PlaceId>(p)).stage);
    }
    meta.transition_names.reserve(net_.num_transitions());
    meta.transition_place.reserve(net_.num_transitions());
    for (unsigned t = 0; t < net_.num_transitions(); ++t) {
      const Transition& tr = net_.transition(static_cast<TransitionId>(t));
      meta.transition_names.push_back(tr.name());
      meta.transition_place.push_back(tr.independent() ? kNoPlace
                                                       : tr.trigger_place());
    }
    options_.obs->bind(std::move(meta));
  }
#endif
  built_ = true;
}

void Engine::reset() {
  for (unsigned s = 0; s < net_.num_stages(); ++s)
    net_.stage(static_cast<StageId>(s)).clear_tokens([this](Token* t) {
      if (t->kind == TokenKind::instruction) {
        auto* it = static_cast<InstructionToken*>(t);
        it->squash_release();
        it->in_flight = false;
        if (it->pool_owned) instr_free_.push_back(it);
      } else {
        res_free_.push_back(t);
      }
    });
  stats_.reset(net_.num_transitions(), net_.num_places());
  clock_ = 0;
  stopped_ = false;
  in_flight_ = 0;
  seq_counter_ = 0;
  last_activity_clock_ = 0;
  activity_snapshot_ = 0;
  run_horizon_ = ~Cycle{0};
  quiesce_blocked_ = false;
}

// ---------------------------------------------------------------------------
// Token services
// ---------------------------------------------------------------------------

InstructionToken* Engine::acquire_pooled_instruction() {
  if (!instr_free_.empty()) {
    InstructionToken* t = instr_free_.back();
    instr_free_.pop_back();
    t->reset_dynamic();
    return t;
  }
  InstructionToken* t = instr_arena_.allocate();
  t->pool_owned = true;
  return t;
}

Token* Engine::acquire_reservation() {
  if (!res_free_.empty()) {
    Token* t = res_free_.back();
    res_free_.pop_back();
    return t;
  }
  return res_arena_.allocate();
}

void Engine::reserve_token_pools(std::size_t instructions, std::size_t reservations) {
  instr_arena_.reserve(instructions);
  instr_free_.reserve(instructions);
  res_arena_.reserve(reservations);
  res_free_.reserve(reservations);
}

void Engine::recycle(Token* t) {
  if (t->kind == TokenKind::reservation) {
    t->place = kNoPlace;
    res_free_.push_back(t);
  } else {
    auto* it = static_cast<InstructionToken*>(t);
    it->in_flight = false;
    if (it->pool_owned) instr_free_.push_back(it);
  }
}

void Engine::emit_instruction(InstructionToken* t, PlaceId p) {
  if (!built_) build();
  t->in_flight = true;
  t->squashed = false;
  t->seq = seq_counter_++;
  ++in_flight_;
  ++stats_.fetched;
  enter_place(t, p, 0);
}

void Engine::emit_reservation(PlaceId p) {
  if (!built_) build();
  Token* t = acquire_reservation();
  t->next_delay = 0;
  ++stats_.reservations;
  enter_place(t, p, 0);
}

bool Engine::place_has_room(PlaceId p, std::uint32_t n) const {
  return place_stage_[static_cast<unsigned>(p)]->has_room(n);
}

unsigned Engine::tokens_in_place(PlaceId p) const {
  // SoA filter scan: the packed key tests (place, kind) without touching the
  // tokens themselves.
  const TokenStore& ts = place_stage_[static_cast<unsigned>(p)]->store();
  const TokenStore::Key want = TokenStore::key(p, TokenKind::instruction);
  return soa::count_matches(ts.keys(), ts.size(), want);
}

void Engine::enter_place(Token* tok, PlaceId p, std::uint32_t transition_delay) {
  enter_place_in(tok, p, *place_stage_[static_cast<unsigned>(p)], transition_delay);
}

void Engine::enter_place_in(Token* tok, PlaceId p, PipelineStage& st,
                            std::uint32_t transition_delay) {
  if (st.is_end()) {
    if (tok->kind == TokenKind::instruction) {
      retire(static_cast<InstructionToken*>(tok));
    } else {
      recycle(tok);
    }
    return;
  }
  const std::uint32_t residence =
      (tok->next_delay != 0 ? tok->next_delay
                            : place_delay_[static_cast<unsigned>(p)]) +
      transition_delay;
  tok->next_delay = 0;
  tok->place = p;
  tok->ready = clock_ + residence;
  if (tok->kind == TokenKind::instruction) {
    auto* it = static_cast<InstructionToken*>(tok);
    // Visible state lags insertion for two-list stages (promoted next cycle).
    it->state = st.two_list() ? kNoPlace : p;
  }
#if RCPN_OBS
  if (options_.obs != nullptr && tok->kind == TokenKind::instruction) {
    auto* it = static_cast<InstructionToken*>(tok);
    options_.obs->on_token_enter(clock_, p, it->seq, it->pc);
  }
#endif
  st.insert(tok);
}

void Engine::retire(InstructionToken* tok) {
#if RCPN_OBS
  if (options_.obs != nullptr) options_.obs->on_retire(clock_, tok->seq, tok->pc);
#endif
  ++stats_.retired;
  assert(in_flight_ > 0);
  --in_flight_;
  tok->place = kNoPlace;
  tok->state = kNoPlace;
  if (hooks_.on_retire) hooks_.on_retire(tok);
  recycle(tok);
}

void Engine::squash_token(Token* t) {
  if (t->kind == TokenKind::instruction) {
    auto* it = static_cast<InstructionToken*>(t);
#if RCPN_OBS
    if (options_.obs != nullptr) options_.obs->on_squash(clock_, it->seq, it->pc);
#endif
    it->squash_release();
    ++stats_.squashed;
    assert(in_flight_ > 0);
    --in_flight_;
    it->place = kNoPlace;
    it->state = kNoPlace;
    if (hooks_.on_squash) hooks_.on_squash(it);
    recycle(it);
  } else {
    recycle(t);
  }
}

void Engine::flush_stage(StageId s) {
  net_.stage(s).clear_tokens([this](Token* t) { squash_token(t); });
}

void Engine::flush_stage_if(StageId s, const std::function<bool(const Token&)>& pred) {
  PipelineStage& st = net_.stage(s);
  // Collect first: squash_token recycles into pools and must not run while
  // iterating the live vectors.
  scratch_flush_.clear();
  for (Token* t : st.tokens())
    if (pred(*t)) scratch_flush_.push_back(t);
  for (Token* t : st.incoming())
    if (pred(*t)) scratch_flush_.push_back(t);
  for (Token* t : scratch_flush_) {
    const bool removed = st.remove_any(t);
    assert(removed && "flushed token vanished from its stage");
    (void)removed;
    squash_token(t);
  }
}

// ---------------------------------------------------------------------------
// Per-cycle processing (Fig 7 / Fig 8)
// ---------------------------------------------------------------------------

Token* Engine::find_ready_reservation(PlaceId p) const {
  // SoA filter scan in age order (identical to the old per-token walk, minus
  // the dereferences): reservations carry no data, so the match never needs
  // to touch the token until it is returned.
  const TokenStore& ts = place_stage_[static_cast<unsigned>(p)]->store();
  const TokenStore::Key want = TokenStore::key(p, TokenKind::reservation);
  const std::size_t n = ts.size();
  const std::size_t i = soa::find_match_ready(ts.keys(), ts.ready(), n, want, clock_);
  return i < n ? ts.at(i) : nullptr;
}

bool Engine::try_fire(const Transition& t, InstructionToken* tok) {
  count_attempt(t.id());
  // Fast path for the overwhelmingly common shape: one trigger arc, one
  // move arc (a plain pipeline-latch-to-latch transition).
  if (t.inputs().size() == 1 && t.outputs().size() == 1 &&
      t.outputs()[0].emit == ArcEmit::move) {
    PipelineStage& from = *place_stage_[static_cast<unsigned>(tok->place)];
    PipelineStage& to =
        *place_stage_[static_cast<unsigned>(t.outputs()[0].place)];
    if (&to != &from && !to.has_room(1, 0)) {
      reject_cause_ = StallCause::capacity_backpressure;
      return false;
    }
    FireCtx ctx{this, tok, t.id()};
    if (t.has_guard() && !t.eval_guard(ctx)) {
      reject_cause_ = StallCause::guard_rejected;
      return false;
    }
    const bool removed = from.remove(tok);
    assert(removed && "trigger token not visible in its place");
    (void)removed;
    tok->place = kNoPlace;
    tok->state = kNoPlace;
    if (t.has_action()) t.run_action(ctx);
    enter_place(tok, t.outputs()[0].place, t.delay());
    count_fire(t.id());
    return true;
  }

  // 1. Input availability: the trigger token is `tok` (already matched);
  //    every reservation arc needs a ready reservation token.
  Token* reservations[4];
  unsigned nres = 0;
  for (const InArc& a : t.inputs()) {
    if (a.need == ArcNeed::trigger) continue;
    Token* r = find_ready_reservation(a.place);
    if (r == nullptr) {
      reject_cause_ = StallCause::no_ready_token;
      return false;
    }
    assert(nres < 4);
    reservations[nres++] = r;
  }

  // 2. Output capacity, netting out same-stage removals (paper: "the
  //    pipeline stages of the output places have enough capacity").
  StageDelta deltas[8];
  unsigned nd = 0;
  auto delta_for = [&](StageId s) -> StageDelta& {
    for (unsigned i = 0; i < nd; ++i)
      if (deltas[i].stage == s) return deltas[i];
    assert(nd < 8);
    deltas[nd].stage = s;
    deltas[nd].removals = 0;
    deltas[nd].additions = 0;
    return deltas[nd++];
  };
  delta_for(net_.place(tok->place).stage).removals += 1;
  for (unsigned i = 0; i < nres; ++i)
    delta_for(net_.place(reservations[i]->place).stage).removals += 1;
  for (const OutArc& a : t.outputs())
    delta_for(net_.place(a.place).stage).additions += 1;
  for (unsigned i = 0; i < nd; ++i) {
    const PipelineStage& st = net_.stage(deltas[i].stage);
    if (!st.has_room(static_cast<std::uint32_t>(deltas[i].additions),
                     static_cast<std::uint32_t>(deltas[i].removals))) {
      reject_cause_ = StallCause::capacity_backpressure;
      return false;
    }
  }

  // 3. Guard.
  FireCtx ctx{this, tok, t.id()};
  if (t.has_guard() && !t.eval_guard(ctx)) {
    reject_cause_ = StallCause::guard_rejected;
    return false;
  }

  // ---- fire ----
  PipelineStage& from = net_.stage(net_.place(tok->place).stage);
  const bool removed = from.remove(tok);
  assert(removed && "trigger token not visible in its place");
  (void)removed;
  tok->place = kNoPlace;
  tok->state = kNoPlace;
  for (unsigned i = 0; i < nres; ++i) {
    PipelineStage& rs = net_.stage(net_.place(reservations[i]->place).stage);
    rs.remove(reservations[i]);
    recycle(reservations[i]);
  }

  if (t.has_action()) t.run_action(ctx);

  for (const OutArc& a : t.outputs()) {
    if (a.emit == ArcEmit::move) {
      enter_place(tok, a.place, t.delay());
    } else {
      Token* r = acquire_reservation();
      ++stats_.reservations;
      enter_place(r, a.place, t.delay());
    }
  }

  count_fire(t.id());
  return true;
}

void Engine::process_place(PlaceId p) {
  PipelineStage& st = *place_stage_[static_cast<unsigned>(p)];
  if (st.tokens().empty()) return;
  // Snapshot: firing mutates the stage's token list.
  scratch_.clear();
  for (Token* t : st.tokens())
    if (t->place == p && t->kind == TokenKind::instruction && t->ready <= clock_)
      scratch_.push_back(static_cast<InstructionToken*>(t));
  if (scratch_.empty()) return;

  const unsigned nt = net_.num_types();
  for (InstructionToken* tok : scratch_) {
    // Re-check: an earlier firing in this cycle may have consumed, flushed or
    // even recycled-and-reinjected this token.
    if (tok->place != p || tok->squashed || tok->ready > clock_) continue;
    // Default attribution: a token with zero candidate transitions stalls
    // because nothing is ready for it. Each failed candidate overwrites this,
    // so the *last* candidate's failure reason wins — same scan order in
    // every backend, so the breakdown is backend-identical.
    reject_cause_ = StallCause::no_ready_token;
    bool fired = false;
    if (!options_.linear_search) {
      const auto& cands =
          sorted_[static_cast<std::size_t>(p) * nt + static_cast<unsigned>(tok->type)];
      for (const Transition* t : cands) {
        if (try_fire(*t, tok)) {
          fired = true;
          break;
        }
      }
    } else {
      // Ablation: CPN-style global search over all transitions, repeated for
      // every token — no Fig 6 precomputation.
      std::vector<const Transition*> cands;
      for (unsigned ti = 0; ti < net_.num_transitions(); ++ti) {
        const Transition& t = net_.transition(static_cast<TransitionId>(ti));
        if (!t.independent() && t.trigger_place() == p && t.subnet() == tok->type)
          cands.push_back(&t);
      }
      std::stable_sort(cands.begin(), cands.end(),
                       [](const Transition* a, const Transition* b) {
                         return a->trigger_priority() < b->trigger_priority();
                       });
      for (const Transition* t : cands) {
        if (try_fire(*t, tok)) {
          fired = true;
          break;
        }
      }
    }
    if (!fired) count_stall(p, tok);
  }
}

bool Engine::independent_enabled(const Transition& t) {
  count_attempt(t.id());
  for (const InArc& a : t.inputs()) {
    assert(a.need == ArcNeed::reservation &&
           "independent transitions cannot have trigger arcs");
    if (find_ready_reservation(a.place) == nullptr) return false;
  }
  for (const OutArc& a : t.outputs())
    if (!place_has_room(a.place, 1)) return false;
  FireCtx ctx{this, nullptr, t.id()};
  if (t.has_guard() && !t.eval_guard(ctx)) return false;
  return true;
}

void Engine::fire_independent(const Transition& t) {
  for (const InArc& a : t.inputs()) {
    Token* r = find_ready_reservation(a.place);
    PipelineStage& rs = net_.stage(net_.place(a.place).stage);
    rs.remove(r);
    recycle(r);
  }
  FireCtx ctx{this, nullptr, t.id()};
  if (t.has_action()) t.run_action(ctx);
  for (const OutArc& a : t.outputs()) {
    if (a.emit == ArcEmit::reservation) {
      Token* r = acquire_reservation();
      ++stats_.reservations;
      enter_place(r, a.place, t.delay());
    }
    // ArcEmit::move targets declare capacity intent only; the action emits
    // instruction tokens itself via emit_instruction().
  }
  count_fire(t.id());
}

void Engine::run_independent() {
  for (TransitionId tid : net_.independent_transitions()) {
    const Transition& t = net_.transition(tid);
    for (int i = 0; i < t.max_fires_per_cycle(); ++i) {
      if (!independent_enabled(t)) break;
      fire_independent(t);
    }
  }
}

bool Engine::finish_cycle() {
#if RCPN_OBS
  if (options_.obs != nullptr) {
    obs::Hub* hub = options_.obs;
    for (unsigned s = 0; s < net_.num_stages(); ++s)
      hub->sample_stage(clock_, static_cast<StageId>(s),
                        net_.stage(static_cast<StageId>(s)).occupancy());
    hub->on_cycle_end(clock_);
  }
#endif
  ++clock_;
  ++stats_.cycles;

  // Deadlock watchdog: tokens in flight but nothing has fired for a while.
  const std::uint64_t activity = stats_.firings + stats_.retired;
  if (activity != activity_snapshot_) {
    activity_snapshot_ = activity;
    last_activity_clock_ = clock_;
    quiesce_blocked_ = false;
  } else {
    if (options_.quiescence_skip && !quiesce_blocked_) maybe_skip_quiescent();
    if (in_flight_ > 0 && clock_ - last_activity_clock_ > options_.deadlock_limit) {
      util::log_line(
          util::LogLevel::error,
          "engine: no activity for " + std::to_string(options_.deadlock_limit) +
              " cycles with tokens in flight — model deadlock in net '" +
              net_.name() + "'");
      stopped_ = true;
    }
  }
  return !stopped_;
}

void Engine::maybe_skip_quiescent() {
  // Nothing fired this cycle. If every stage is fully idle — no incoming
  // tokens awaiting promotion and no visible token ready at the next cycle —
  // the steps between here and the earliest ready cycle would each process
  // nothing (guards and capacities only get re-evaluated for *ready* tokens,
  // and independent transitions that could fire during idle cycles would
  // have fired this cycle already). Jump straight there. The skipped cycles
  // still count: clock_ and stats_.cycles advance together, so traces,
  // stats and the CPI math are identical to the unskipped run. (Under
  // RCPN_OBS the per-cycle occupancy samples for the skipped window are
  // elided — see the EngineOptions::quiescence_skip comment.)
  Cycle earliest = ~Cycle{0};
  for (unsigned s = 0; s < net_.num_stages(); ++s) {
    const PipelineStage& st = net_.stage(static_cast<StageId>(s));
    if (!st.incoming().empty()) return;
    const TokenStore& ts = st.store();
    earliest = std::min(earliest, soa::min_ready(ts.ready(), ts.size()));
  }
  if (earliest == ~Cycle{0}) return;  // no visible tokens: nothing to jump to
  if (earliest <= clock_) {
    // A visible token is ready right now but blocked on a guard or on
    // capacity. Ready times are absolute, so it stays ready (and the scan
    // keeps failing) until something fires; latch the scan off rather than
    // paying it again on every idle cycle of the stall window.
    quiesce_blocked_ = true;
    return;
  }
  Cycle target = std::min(earliest, run_horizon_);
  // Never jump past the point where the deadlock watchdog would have stopped
  // an unskipped run.
  if (in_flight_ > 0)
    target = std::min(target, last_activity_clock_ + options_.deadlock_limit + 1);
  if (target <= clock_) return;
  const std::uint64_t skipped = target - clock_;
  clock_ = target;
  stats_.cycles += skipped;
  stats_.quiesced_cycles += skipped;
}

bool Engine::step() {
  if (!built_) build();
  if (stopped_) return false;

  // Fig 8: make tokens written during the previous cycle visible.
  for (StageId s : two_list_stages_) net_.stage(s).promote_incoming();

  for (PlaceId p : order_) process_place(p);

  run_independent();

  return finish_cycle();
}

std::uint64_t Engine::run(std::uint64_t max_cycles) {
  const Cycle start = clock_;
  // Bound the quiescence skip so this call executes exactly `max_cycles`
  // cycles (no more), as an unskipped run would.
  run_horizon_ = max_cycles > ~Cycle{0} - start ? ~Cycle{0} : start + max_cycles;
  while (!stopped_ && clock_ - start < max_cycles) step();
  run_horizon_ = ~Cycle{0};
  return clock_ - start;
}

const std::vector<const Transition*>& Engine::candidates(PlaceId p, TypeId type) const {
  return sorted_[static_cast<std::size_t>(p) * net_.num_types() +
                 static_cast<unsigned>(type)];
}

}  // namespace rcpn::core
