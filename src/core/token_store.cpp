#include "core/token_store.hpp"

#include <algorithm>
#include <cassert>

namespace rcpn::core {

void TokenStore::reserve(std::size_t n) {
  ptrs_.reserve(n);
  keys_.reserve(n);
  ready_.reserve(n);
  in_ptrs_.reserve(n);
  in_keys_.reserve(n);
  in_ready_.reserve(n);
}

void TokenStore::insert_visible(Token* t) {
  ptrs_.push_back(t);
  keys_.push_back(key(t->place, t->kind));
  ready_.push_back(t->ready);
}

void TokenStore::insert_incoming(Token* t) {
  in_ptrs_.push_back(t);
  in_keys_.push_back(key(t->place, t->kind));
  in_ready_.push_back(t->ready);
}

void TokenStore::erase_slot(std::vector<Token*>& ptrs, std::vector<Key>& keys,
                            std::vector<Cycle>& ready, std::size_t i) {
  ptrs.erase(ptrs.begin() + static_cast<std::ptrdiff_t>(i));
  keys.erase(keys.begin() + static_cast<std::ptrdiff_t>(i));
  ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(i));
}

bool TokenStore::remove_visible(Token* t) {
  auto it = std::find(ptrs_.begin(), ptrs_.end(), t);
  if (it == ptrs_.end()) return false;
  erase_slot(ptrs_, keys_, ready_, static_cast<std::size_t>(it - ptrs_.begin()));
  return true;
}

bool TokenStore::remove_visible_at(std::size_t hint, Token* t) {
  if (hint < ptrs_.size() && ptrs_[hint] == t) {
    // Pointer equality is only a sufficient check if `t` occupies a single
    // slot: a double insertion would make a stale hint erase the *wrong age*
    // copy, silently reordering the store. Engine semantics forbid double
    // residency, so enforce it where the hint shortcut relies on it.
    assert(std::count(ptrs_.begin(), ptrs_.end(), t) == 1);
    erase_slot(ptrs_, keys_, ready_, hint);
    return true;
  }
  return remove_visible(t);
}

bool TokenStore::remove_any(Token* t) {
  if (remove_visible(t)) return true;
  auto it = std::find(in_ptrs_.begin(), in_ptrs_.end(), t);
  if (it == in_ptrs_.end()) return false;
  erase_slot(in_ptrs_, in_keys_, in_ready_,
             static_cast<std::size_t>(it - in_ptrs_.begin()));
  return true;
}

void TokenStore::promote() {
  if (in_ptrs_.empty()) return;
  for (std::size_t i = 0; i < in_ptrs_.size(); ++i) {
    Token* t = in_ptrs_[i];
    ptrs_.push_back(t);
    keys_.push_back(in_keys_[i]);
    ready_.push_back(in_ready_[i]);
    if (t->kind == TokenKind::instruction)
      static_cast<InstructionToken*>(t)->state = t->place;
  }
  in_ptrs_.clear();
  in_keys_.clear();
  in_ready_.clear();
}

}  // namespace rcpn::core
