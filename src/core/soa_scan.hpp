// Branchless / SIMD filter kernels over the TokenStore SoA lanes.
//
// The §5 hot loop spends most of its time answering three questions about a
// stage's token pool: "which slots hold a ready token of this (place, kind)?"
// (the per-place candidate scan), "is there a ready reservation here?"
// (trigger-input checks) and "how many instruction tokens sit in this place?"
// (capacity math). All three reduce to filtering the two contiguous lanes the
// store already maintains — the packed uint32 key lane and the uint64 ready
// lane — without touching the Token objects.
//
// With -mavx2 (cmake RCPN_AVX2, host-detected by default) each kernel
// compares keys in blocks of 8 with one _mm256_cmpeq_epi32 and walks the set
// bits of the movemask with std::countr_zero; the 64-bit ready lane is
// checked per match, after the key filter has discarded the bulk of the
// pool. Without it the kernels are the plain reference loops: a bitmask
// filter built from scalar compares was measured ~2x *slower* than what the
// compiler makes of the simple loop at pipeline-realistic pool sizes
// (8-64 slots), so the block path is strictly SIMD.
//
// The block path also only engages at kSimdMinSlots — below that the wide
// load + movemask costs more than it filters (a find over a handful of
// slots whose first match sits early is a couple of predictable branches),
// and the in-order ARM stages live entirely in that regime. Wide pools
// (reservation-station-style stores) are where the 8-wide filter pays.
//
// The AVX2 path visits matches in ascending slot order, so results are
// byte-identical to the scalar reference loops (the four-way differential
// harness pins this); scalar_override() forces the reference loops at runtime
// for the fig10 SIMD ablation column.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "core/token.hpp"

namespace rcpn::core::soa {

/// Bench-only switch (bench_fig10_performance): when true every kernel runs
/// its scalar reference loop. Results are identical either way — this exists
/// to measure the win, not to change behavior. In a non-AVX2 build the
/// kernels already *are* the reference loops and the switch is a no-op.
inline bool& scalar_override() {
  static bool v = false;
  return v;
}

/// True when the SIMD block path is compiled in (the ablation report
/// distinguishes a measured win from a by-construction 1.0x).
inline constexpr bool simd_compiled() {
#if defined(__AVX2__)
  return true;
#else
  return false;
#endif
}

/// Pool size below which the scalar loop beats the 8-wide filter (measured:
/// wide-load+movemask overhead vs a few predictable compare branches).
inline constexpr std::size_t kSimdMinSlots = 16;

#if defined(__AVX2__)
namespace detail {

/// Bitmask of key matches among keys[i..i+8) — bit b set iff keys[i+b]==want.
inline std::uint32_t key_mask8(const std::uint32_t* keys, std::uint32_t want) {
  const __m256i k = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys));
  const __m256i eq = _mm256_cmpeq_epi32(k, _mm256_set1_epi32(static_cast<int>(want)));
  return static_cast<std::uint32_t>(_mm256_movemask_ps(_mm256_castsi256_ps(eq)));
}

}  // namespace detail
#endif

/// Number of slots whose key equals `want` (Engine::tokens_in_place).
inline unsigned count_matches(const std::uint32_t* keys, std::size_t n,
                              std::uint32_t want) {
#if defined(__AVX2__)
  if (n >= kSimdMinSlots && !scalar_override()) {
    const std::size_t blocks = n - n % 8;
    unsigned count = 0;
    std::size_t i = 0;
    for (; i < blocks; i += 8)
      count += static_cast<unsigned>(std::popcount(detail::key_mask8(keys + i, want)));
    for (; i < n; ++i) count += static_cast<unsigned>(keys[i] == want);
    return count;
  }
#endif
  unsigned count = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (keys[i] == want) ++count;
  return count;
}

/// First slot (age order) whose key equals `want` and whose ready cycle is
/// <= `now`; `n` if none (Engine::find_ready_reservation).
inline std::size_t find_match_ready(const std::uint32_t* keys, const Cycle* ready,
                                    std::size_t n, std::uint32_t want, Cycle now) {
#if defined(__AVX2__)
  if (n >= kSimdMinSlots && !scalar_override()) {
    const std::size_t blocks = n - n % 8;
    std::size_t i = 0;
    for (; i < blocks; i += 8) {
      std::uint32_t m = detail::key_mask8(keys + i, want);
      while (m != 0) {
        const unsigned b = static_cast<unsigned>(std::countr_zero(m));
        if (ready[i + b] <= now) return i + b;
        m &= m - 1;
      }
    }
    for (; i < n; ++i)
      if (keys[i] == want && ready[i] <= now) return i;
    return n;
  }
#endif
  for (std::size_t i = 0; i < n; ++i)
    if (keys[i] == want && ready[i] <= now) return i;
  return n;
}

/// Call fn(slot) for every slot (ascending) whose key equals `want` and whose
/// ready cycle is <= `now` — the per-place candidate scan of the compiled and
/// generated backends.
template <class Fn>
inline void for_each_match_ready(const std::uint32_t* keys, const Cycle* ready,
                                 std::size_t n, std::uint32_t want, Cycle now,
                                 Fn&& fn) {
#if defined(__AVX2__)
  if (n >= kSimdMinSlots && !scalar_override()) {
    const std::size_t blocks = n - n % 8;
    std::size_t i = 0;
    for (; i < blocks; i += 8) {
      std::uint32_t m = detail::key_mask8(keys + i, want);
      while (m != 0) {
        const unsigned b = static_cast<unsigned>(std::countr_zero(m));
        if (ready[i + b] <= now) fn(i + b);
        m &= m - 1;
      }
    }
    for (; i < n; ++i)
      if (keys[i] == want && ready[i] <= now) fn(i);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i)
    if (keys[i] == want && ready[i] <= now) fn(i);
}

/// Minimum ready cycle over all `n` slots; ~0ull when the pool is empty
/// (the quiescence-skip scan — every kind counts, reservations included).
inline Cycle min_ready(const Cycle* ready, std::size_t n) {
  Cycle best = ~Cycle{0};
  for (std::size_t i = 0; i < n; ++i) best = ready[i] < best ? ready[i] : best;
  return best;
}

}  // namespace rcpn::core::soa
