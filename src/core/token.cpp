#include "core/token.hpp"
