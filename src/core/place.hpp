// Places: the states an instruction moves through. Each place is bound to a
// pipeline stage and may carry a default residence delay (paper §3: "the
// delay of a place determines how long a token should reside in that place
// before it can be considered for enabling an output transition").
#pragma once

#include <cstdint>
#include <string>

#include "core/token.hpp"

namespace rcpn::core {

struct Place {
  std::string name;
  PlaceId id = kNoPlace;
  StageId stage = kNoStage;
  /// Residence in cycles before output transitions may consume a token here;
  /// >= 1 (a normal latch holds its token for one cycle). A token's
  /// next_delay overrides this on entry.
  std::uint32_t delay = 1;
};

}  // namespace rcpn::core
