#include "core/place.hpp"
