// Tokens: the moving parts of an RCPN.
//
// The paper distinguishes two token groups (§3):
//  * reservation tokens — carry no data; their presence in a place marks the
//    occupancy of the place's pipeline stage (e.g. a branch parking a
//    reservation token in the fetch latch to stall fetch);
//  * instruction tokens — one per in-flight instruction; they carry the full
//    decode result so the instruction is decoded exactly once and never
//    re-decoded in later pipeline stages (§4, third bullet of the speedup
//    list).
#pragma once

#include <cstdint>

#include "regfile/operand.hpp"

namespace rcpn::core {

using PlaceId = std::int16_t;
using StageId = std::int16_t;
using TypeId = std::int16_t;
using TransitionId = std::int16_t;
using Cycle = std::uint64_t;

constexpr PlaceId kNoPlace = -1;
constexpr StageId kNoStage = -1;
constexpr TypeId kNoType = -1;

static_assert(static_cast<PlaceId>(regfile::kNoPlace) == kNoPlace,
              "core and regfile must agree on place ids");

enum class TokenKind : std::uint8_t { reservation, instruction };

struct Token {
  TokenKind kind = TokenKind::reservation;
  /// Operation class for instruction tokens; kNoType for reservations.
  TypeId type = kNoType;
  /// Where the token currently resides (kNoPlace while being moved).
  PlaceId place = kNoPlace;
  /// First cycle at which output transitions of the current place may
  /// consume this token (entry cycle + residence delay).
  Cycle ready = 0;
  /// Token delay override for the *next* place entry (paper: "the delay of a
  /// token overwrites the delay of its containing place"); 0 = use the
  /// place's delay. Consumed and cleared on entry.
  std::uint32_t next_delay = 0;
};

class InstructionToken : public Token {
 public:
  static constexpr int kMaxOps = 6;

  InstructionToken() { kind = TokenKind::instruction; }

  /// Program counter and raw encoding of the instruction instance.
  std::uint64_t pc = 0;
  std::uint32_t raw = 0;
  /// Dynamic sequence number (fetch order); used for age-based squash.
  std::uint32_t seq = 0;

  /// The instruction's visible pipeline state for hazard queries
  /// (RegRef::owner_place points here). For stages with two-list semantics
  /// this lags `place` until the written tokens are promoted at the start of
  /// the next cycle, so guards never observe mid-cycle state.
  PlaceId state = kNoPlace;

  /// Operand symbols bound at decode time (RegRef / ConstOperand).
  regfile::Operand* ops[kMaxOps] = {};

  /// ISA-specific decode payload (e.g. arm::DecodedInstruction). The token
  /// does not own it; the decode cache does.
  void* payload = nullptr;

  /// Lifecycle flags. `in_flight` guards decode-cache reuse; `pool_owned`
  /// tokens are recycled by the engine on retire/squash.
  bool in_flight = false;
  bool pool_owned = false;
  bool squashed = false;

  regfile::Operand* op(int i) const { return ops[i]; }

  /// Reset the dynamic fields for a fresh execution of the same static
  /// instruction (decode-cache hit). Operand reservations need no release
  /// here: a reusable token either retired (all reservations written back)
  /// or was squashed (squash_release dropped them), and stale value-ready
  /// flags are harmless — forwarding only consults registered writers.
  void reset_dynamic() {
    place = kNoPlace;
    state = kNoPlace;
    ready = 0;
    next_delay = 0;
    in_flight = false;
    squashed = false;
  }

  /// Squash: drop all operand reservations (mis-speculation / flush path).
  void squash_release() {
    squashed = true;
    for (auto* o : ops)
      if (o) o->release();
  }
};

}  // namespace rcpn::core
