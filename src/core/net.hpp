// Net: the static structure of an RCPN model — stages, places, operation
// classes (sub-net ids), transitions and the instruction-independent sub-net.
// Models are built with the fluent TransitionBuilder; the Engine then
// "generates the simulator" from the finished net (Fig 6 + topological
// analysis) without any further interpretation of the structure.
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline_stage.hpp"
#include "core/place.hpp"
#include "core/transition.hpp"

namespace rcpn::core {

class Net;

/// Fluent construction handle for one transition.
class TransitionBuilder {
 public:
  /// Trigger input arc: the instruction token is consumed from `p`.
  TransitionBuilder& from(PlaceId p, std::uint8_t priority = 0);
  /// Extra input arc consuming one reservation token from `p`.
  TransitionBuilder& consume_reservation(PlaceId p);
  /// Output arc moving the instruction token to `p`.
  TransitionBuilder& to(PlaceId p);
  /// Output arc emitting a reservation token into `p` (dotted arcs of Fig 5).
  TransitionBuilder& emit_reservation(PlaceId p);
  /// Raw delegates: a single indirect call in the hot loop. The core layer
  /// stores no closures — ModelBuilder boxes capturing callables behind this
  /// signature when a model needs them.
  TransitionBuilder& guard(GuardFn fn, void* env);
  TransitionBuilder& action(ActionFn fn, void* env);
  /// Record the fully-qualified symbol of the delegate just bound, when it is
  /// a named function (feeds gen::emit_simulator; empty = anonymous closure).
  /// `takes_machine` records its arity: (Machine&, FireCtx&) vs (FireCtx&).
  TransitionBuilder& guard_symbol(std::string symbol, bool takes_machine = true);
  TransitionBuilder& action_symbol(std::string symbol, bool takes_machine = true);
  /// Declare that the guard queries the state of place `p`
  /// (can_read_in(p) etc.); feeds the circular-reference analysis.
  TransitionBuilder& reads_state(PlaceId p);
  TransitionBuilder& delay(std::uint32_t d);
  TransitionBuilder& max_fires_per_cycle(int n);

  TransitionId id() const { return t_->id(); }
  Transition& transition() { return *t_; }

 private:
  friend class Net;
  TransitionBuilder(Net* net, Transition* t) : net_(net), t_(t) {}
  Net* net_;
  Transition* t_;
};

class Net {
 public:
  explicit Net(std::string name);

  const std::string& name() const { return name_; }

  /// The virtual final stage/place every instruction ends in (paper §3);
  /// created automatically with unlimited capacity.
  StageId end_stage() const { return 0; }
  PlaceId end_place() const { return 0; }

  StageId add_stage(const std::string& name, std::uint32_t capacity);
  /// Place bound to `stage`; `delay` is its residence time (>= 1).
  PlaceId add_place(const std::string& name, StageId stage, std::uint32_t delay = 1);
  /// Additional end place (shares the unlimited end stage).
  PlaceId add_end_place(const std::string& name);

  /// Register an operation class (instruction type). Each gets its own
  /// sub-net, identified by the TypeId on transitions.
  TypeId add_type(const std::string& name);

  TransitionBuilder add_transition(const std::string& name, TypeId subnet);
  /// Instruction-independent transition (fetch/decode); runs at the end of
  /// every cycle in declaration order (Fig 8).
  TransitionBuilder add_independent_transition(const std::string& name);
  /// Re-open a declared transition for further construction. The model layer
  /// lowers structure first (shared with machine-less structural nets) and
  /// binds guards/actions in a second pass through this.
  TransitionBuilder edit_transition(TransitionId t);

  // -- accessors --------------------------------------------------------------
  unsigned num_stages() const { return static_cast<unsigned>(stages_.size()); }
  unsigned num_places() const { return static_cast<unsigned>(places_.size()); }
  unsigned num_types() const { return static_cast<unsigned>(types_.size()); }
  unsigned num_transitions() const { return static_cast<unsigned>(transitions_.size()); }

  PipelineStage& stage(StageId s) { return stages_[static_cast<unsigned>(s)]; }
  const PipelineStage& stage(StageId s) const { return stages_[static_cast<unsigned>(s)]; }
  Place& place(PlaceId p) { return places_[static_cast<unsigned>(p)]; }
  const Place& place(PlaceId p) const { return places_[static_cast<unsigned>(p)]; }
  PipelineStage& stage_of(PlaceId p) { return stage(place(p).stage); }
  const PipelineStage& stage_of(PlaceId p) const { return stage(place(p).stage); }
  Transition& transition(TransitionId t) { return *transitions_[static_cast<unsigned>(t)]; }
  const Transition& transition(TransitionId t) const {
    return *transitions_[static_cast<unsigned>(t)];
  }
  const std::string& type_name(TypeId t) const { return types_[static_cast<unsigned>(t)]; }
  const std::vector<TransitionId>& independent_transitions() const { return independent_; }

  /// Look up ids by name (nullptr-safe helpers for tests/tools).
  PlaceId find_place(const std::string& name) const;
  StageId find_stage(const std::string& name) const;
  TypeId find_type(const std::string& name) const;

  /// Static model-complexity statistics (used by bench_model_stats).
  struct ModelStats {
    unsigned stages = 0, places = 0, transitions = 0, subnets = 0, arcs = 0;
  };
  ModelStats model_stats() const;

  // -- generation metadata ----------------------------------------------------
  // What gen::emit_simulator() needs beyond the structure: the C++ type of
  // the machine context the named delegates take, and the headers declaring
  // them. Set by the model layer (ModelBuilder) at lowering time; empty for
  // nets that never registered named delegates.
  void set_emit_machine_type(std::string type) { emit_machine_type_ = std::move(type); }
  const std::string& emit_machine_type() const { return emit_machine_type_; }
  void add_emit_include(std::string header) { emit_includes_.push_back(std::move(header)); }
  const std::vector<std::string>& emit_includes() const { return emit_includes_; }

 private:
  friend class TransitionBuilder;

  std::string name_;
  std::vector<PipelineStage> stages_;
  std::vector<Place> places_;
  std::vector<std::string> types_;
  std::vector<std::unique_ptr<Transition>> transitions_;
  std::vector<TransitionId> independent_;
  std::string emit_machine_type_;
  std::vector<std::string> emit_includes_;
};

}  // namespace rcpn::core
