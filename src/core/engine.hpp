// The cycle-accurate simulation engine "generated" from an RCPN model.
//
// build() performs the static extraction the paper describes in §4:
//   * Fig 6 — for every (place, instruction type) pair, the priority-sorted
//     list of candidate transitions is computed once, before simulation;
//   * the places are ordered in reverse topological order of the token-flow
//     graph so that almost no place needs the expensive two-list
//     (master/slave) algorithm;
//   * strongly-connected components and circular guard references
//     (reads_state) identify the few stages that *do* need two-list
//     insertion semantics.
//
// step() is the Fig 8 main loop: promote two-list stages, Process() every
// place in order (Fig 7), run the instruction-independent sub-net, advance
// the clock.
#pragma once

#include <cassert>
#include <functional>
#include <memory>
#include <optional>
#include <typeindex>
#include <vector>

#include "core/net.hpp"
#include "core/stats.hpp"
#include "core/token_store.hpp"
#include "obs/probe.hpp"

namespace rcpn::core {

/// Which engine executes the model. Both run the same static extraction and
/// are cycle-for-cycle equivalent (tests/test_gen.cpp pins this); they differ
/// only in how the hot loop is laid out:
///  * interpreted — core::Engine walking the net's Transition objects;
///  * compiled — gen::CompiledEngine running the flattened tables produced by
///    gen::CompiledModel::lower() (§4-5's generated simulator: contiguous
///    Fig 6 candidate runs, pre-bound raw guard/action delegates, pre-resolved
///    stage pointers). model::Simulator<M> reads this option; the interpreted
///    Engine itself ignores it.
///  * generated — a gen::StaticEngine specialization compiled from a source
///    file that gen::emit_simulator() produced for this model (the paper's
///    literal "generated C++ simulator": constexpr tables, direct guard/action
///    calls, whole-program-optimizable). Requires the generated translation
///    unit to be linked in and registered (gen/generated.hpp); Simulator<M>
///    throws ModelError otherwise.
enum class Backend : std::uint8_t { interpreted, compiled, generated };

/// Options for the static analysis; the defaults follow the paper. The
/// ablation benches flip them to quantify each optimization.
struct EngineOptions {
  /// Engine implementation selected by model::Simulator<M>.
  Backend backend = Backend::interpreted;
  /// Mark stages targeted by circular guard references (reads_state) as
  /// two-list, as the paper does for L3 in Fig 5. Models may still override
  /// per stage with force_two_list().
  bool two_list_state_refs = true;
  /// Ablation: use the two-list algorithm for *every* stage (the
  /// "computationally expensive usual solution" of §4).
  bool force_two_list_all = false;
  /// Ablation: ignore the Fig 6 sorted-transition table and search all
  /// transitions of the net for every token (CPN-style global search).
  bool linear_search = false;
  /// Quiescence cycle-skipping: after a cycle in which nothing fired, if
  /// every stage's incoming buffer is empty and every visible token's ready
  /// cycle lies strictly in the future, fast-forward the clock (and the cycle
  /// counter) to the minimum ready cycle instead of idling through the gap
  /// one step() at a time. Off by default: it is only sound for models whose
  /// guards do not read the engine clock (the curated machines qualify; the
  /// fuzz models' clock-window guards do not). Schedule-affecting like the
  /// flags above — stamped into generated Traits and part of the artifact
  /// options key. Deadlock-watchdog and run(max_cycles) behavior are
  /// preserved exactly (the skip never jumps past either horizon).
  /// Observability interaction (RCPN_OBS + `obs` below): the skipped idle
  /// cycles never reach finish_cycle's per-cycle probes, so obs::Hub
  /// occupancy histograms and StageProfile::cycles count *executed* cycles
  /// only and will total fewer cycles than Stats::cycles by exactly
  /// Stats::quiesced_cycles. Trace consumers see the gap as a jump in event
  /// timestamps; nothing can fire inside it by construction, so no events
  /// are lost — only idle-window occupancy samples are elided.
  bool quiescence_skip = false;
  /// Stop with an error after this many cycles without any firing while
  /// tokens are still in flight (model deadlock watchdog).
  std::uint64_t deadlock_limit = 100000;
  /// Optional observability hub (src/obs/): when attached, the engine binds
  /// the model meta at build() and streams probe events into it. Runtime-only
  /// — excluded from farm job identity and the generated-artifact options
  /// key, and completely ignored unless the library was built with RCPN_OBS
  /// (the probe call sites are compiled out otherwise).
  obs::Hub* obs = nullptr;
};

class Engine {
 public:
  struct Hooks {
    /// Called when an instruction token reaches the virtual end stage.
    std::function<void(InstructionToken*)> on_retire;
    /// Called when an instruction token is squashed by a flush.
    std::function<void(InstructionToken*)> on_squash;
  };

  explicit Engine(Net& net, EngineOptions options = {});
  virtual ~Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Net& net() { return net_; }
  const Net& net() const { return net_; }

  /// Static extraction (Fig 6 + ordering analysis). Called automatically by
  /// the first step() if needed. Virtual so derived engines (the compiled
  /// backend) can append their own lowering; only called on cold paths.
  virtual void build();
  bool built() const { return built_; }

  /// Clear all dynamic state (tokens, stats, clock); keeps build products.
  void reset();

  /// Simulate one clock cycle. Returns false once stop() has been called.
  /// Virtual dispatch costs one indirect call per *cycle*, not per event —
  /// the hot work inside a cycle stays devirtualized in both backends.
  virtual bool step();
  /// Run until stop() or `max_cycles`; returns cycles executed.
  std::uint64_t run(std::uint64_t max_cycles = ~0ull);
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  Cycle clock() const { return clock_; }
  Stats& stats() { return stats_; }
  const Stats& stats() const { return stats_; }
  Hooks& hooks() { return hooks_; }
  EngineOptions& options() { return options_; }
  const EngineOptions& options() const { return options_; }

  /// The machine context (register files, memories, pc, ...) the model's
  /// guards and actions operate on. The context is registered with its static
  /// type; machine<T>() asserts (debug builds) that the same T is used on
  /// retrieval, so a wrong cast fails loudly instead of silently corrupting
  /// memory. The recorded std::type_index is kept in all build modes so the
  /// Engine layout does not depend on NDEBUG (consumers may compile against
  /// the library with different settings). Prefer model::Simulator<M>, which
  /// manages the context and never exposes the erased pointer.
  template <typename T>
  T& machine() {
    assert(machine_ != nullptr && "Engine has no machine context");
    assert(machine_type_.has_value() && *machine_type_ == std::type_index(typeid(T)) &&
           "Engine::machine<T>() type mismatch: T differs from the set_machine type");
    return *static_cast<T*>(machine_);
  }
  template <typename T>
  void set_machine(T* m) {
    static_assert(!std::is_void_v<T>, "register the machine with its real type");
    machine_ = m;
    if (m == nullptr) {
      machine_type_.reset();
    } else {
      machine_type_.emplace(typeid(T));
    }
  }

  // -- services available to transition actions -------------------------------

  /// Inject an instruction token into place `p` (fetch / µ-op expansion).
  /// Honors the token's next_delay. The caller is responsible for capacity
  /// (see place_has_room), mirroring the paper's fetch-transition guard.
  void emit_instruction(InstructionToken* t, PlaceId p);
  /// Emit a reservation token into `p`.
  void emit_reservation(PlaceId p);
  bool place_has_room(PlaceId p, std::uint32_t n = 1) const;
  /// Number of visible instruction tokens currently in place `p`.
  unsigned tokens_in_place(PlaceId p) const;

  /// Squash every token in stage `s` (branch flush). Instruction tokens get
  /// their register reservations released and on_squash fires.
  void flush_stage(StageId s);
  /// Squash only tokens satisfying `pred` (e.g. younger than a branch).
  void flush_stage_if(StageId s, const std::function<bool(const Token&)>& pred);

  /// Acquire a pooled instruction token (for models that do not manage their
  /// own decode cache); recycled automatically on retire/squash.
  InstructionToken* acquire_pooled_instruction();

  std::uint64_t tokens_in_flight() const { return in_flight_; }

  // -- narrow token-storage interface -----------------------------------------
  // Both backends store tokens in the per-stage SoA pools (TokenStore); these
  // are the only entry points, so guards, actions and stats observe identical
  // token semantics regardless of which hot loop runs.

  /// The SoA token pool of stage `s`.
  const TokenStore& token_store(StageId s) const { return net_.stage(s).store(); }
  /// Pre-size the recycling arenas (compiled lowering: pool hints), so the
  /// steady state allocates nothing.
  void reserve_token_pools(std::size_t instructions, std::size_t reservations);

  // -- checkpoint support (src/ckpt/) ------------------------------------------
  // The snapshot layer reads and rebuilds the engine's dynamic state through
  // these narrow entry points. They are not part of the modeling API: restore
  // reproduces the recorded per-stage token lists and counters verbatim, so a
  // restored run continues cycle-for-cycle identically to the original.

  /// Every dynamic engine scalar a snapshot must carry (run_horizon_ is
  /// excluded: snapshots are only taken between run()/step() calls, where it
  /// is always ~0).
  struct CkptScalars {
    Cycle clock = 0;
    std::uint64_t in_flight = 0;
    std::uint32_t seq_counter = 0;
    std::uint64_t last_activity_clock = 0;
    std::uint64_t activity_snapshot = 0;
    bool stopped = false;
    bool quiesce_blocked = false;
  };
  CkptScalars ckpt_scalars() const {
    return CkptScalars{clock_,  in_flight_, seq_counter_,   last_activity_clock_,
                       activity_snapshot_, stopped_,       quiesce_blocked_};
  }
  void ckpt_restore_scalars(const CkptScalars& s) {
    clock_ = s.clock;
    in_flight_ = s.in_flight;
    seq_counter_ = s.seq_counter;
    last_activity_clock_ = s.last_activity_clock;
    activity_snapshot_ = s.activity_snapshot;
    stopped_ = s.stopped;
    quiesce_blocked_ = s.quiesce_blocked;
  }
  /// Pooled reservation token for snapshot restore (the caller sets its
  /// fields and re-inserts it with ckpt_insert_token).
  Token* ckpt_acquire_reservation() { return acquire_reservation(); }
  /// Insert `t` (fields already set) directly into stage `s`'s visible or
  /// incoming list, bypassing the two-list routing: restore reproduces the
  /// recorded lists — including tokens parked in an incoming buffer at the
  /// snapshot boundary — exactly as they were.
  void ckpt_insert_token(Token* t, StageId s, bool incoming) {
    net_.stage(s).insert_restored(t, incoming);
  }

  // -- introspection (tests, benches, CPN conversion) --------------------------
  const std::vector<PlaceId>& process_order() const { return order_; }
  const std::vector<const Transition*>& candidates(PlaceId p, TypeId type) const;
  bool stage_is_two_list(StageId s) const { return net_.stage(s).two_list(); }

 protected:
  // The build products, token services and per-cycle bookkeeping are shared
  // with derived engines: gen::CompiledEngine replaces only the hot loop
  // (candidate search + firing) and reuses everything else, so both backends
  // stay cycle-for-cycle equivalent by construction.
  struct StageDelta {
    StageId stage = kNoStage;
    int removals = 0;
    int additions = 0;
  };

  void compute_sorted_transitions();
  void compute_process_order();
  void process_place(PlaceId p);
  void run_independent();
  bool try_fire(const Transition& t, InstructionToken* tok);
  bool independent_enabled(const Transition& t);
  void fire_independent(const Transition& t);
  void enter_place(Token* tok, PlaceId p, std::uint32_t transition_delay);
  /// Token entry with the place->stage hop already resolved — the one copy of
  /// the entry semantics (retire-on-end, next_delay/residence, two-list state
  /// lag); the compiled backend calls it with its lowering-time stage
  /// pointers, enter_place() with the id-indexed cache.
  void enter_place_in(Token* tok, PlaceId p, PipelineStage& st,
                      std::uint32_t transition_delay);
  void retire(InstructionToken* tok);
  Token* find_ready_reservation(PlaceId p) const;
  Token* acquire_reservation();
  void recycle(Token* t);
  void squash_token(Token* t);
  /// Advance the clock, update stats and run the deadlock watchdog (the tail
  /// of Fig 8's main loop, shared by both backends). Returns !stopped_.
  bool finish_cycle();
  /// The quiescence fast-forward (options_.quiescence_skip): called by
  /// finish_cycle() after a zero-activity cycle; jumps clock_ and
  /// stats_.cycles to the earliest cycle at which any token becomes ready,
  /// capped by the deadlock and run(max_cycles) horizons.
  void maybe_skip_quiescent();

  // -- shared fire/stall accounting -------------------------------------------
  // ONE definition of the hot-loop bookkeeping (and, under RCPN_OBS, of the
  // probe points), inlined into every backend's firing code, so the four
  // backends emit identical statistics and event streams by construction.

  /// A transition fired (the common `++firings; ++transition_fires[id]`).
  inline void count_fire(TransitionId id) {
    ++stats_.firings;
    ++stats_.transition_fires[static_cast<unsigned>(id)];
#if RCPN_OBS
    if (options_.obs != nullptr) options_.obs->on_fire(clock_, id);
#endif
  }

  /// A candidate transition was evaluated for firing (try_fire entry /
  /// independent enable check). Feeds the attempts-vs-fires scan-cost
  /// counters of obs::StageProfile; free when RCPN_OBS is off.
  inline void count_attempt(TransitionId id) {
#if RCPN_OBS
    if (options_.obs != nullptr) options_.obs->on_attempt(id);
#else
    (void)id;
#endif
  }

  /// A ready token fired nothing this cycle; reject_cause_ holds why the
  /// last candidate refused (set by the try_fire implementations).
  inline void count_stall(PlaceId p, const InstructionToken* tok) {
    ++stats_.place_stalls[static_cast<unsigned>(p)];
    ++stats_.place_stall_causes[static_cast<unsigned>(p) * kNumStallCauses +
                                static_cast<unsigned>(reject_cause_)];
#if RCPN_OBS
    if (options_.obs != nullptr)
      options_.obs->on_stall(clock_, p, reject_cause_, tok->seq, tok->pc);
#else
    (void)tok;
#endif
  }

  Net& net_;
  void* machine_ = nullptr;
  std::optional<std::type_index> machine_type_;
  EngineOptions options_;
  Hooks hooks_;
  Stats stats_;
  Cycle clock_ = 0;
  bool stopped_ = false;
  bool built_ = false;
  std::uint64_t in_flight_ = 0;
  std::uint32_t seq_counter_ = 0;
  std::uint64_t last_activity_clock_ = 0;
  std::uint64_t activity_snapshot_ = 0;
  /// Absolute clock value the current run(max_cycles) call must not pass;
  /// ~0ull outside run(). Caps the quiescence skip so run() executes exactly
  /// as many cycles as without the knob.
  Cycle run_horizon_ = ~Cycle{0};
  /// Latched by maybe_skip_quiescent() when a visible token is ready *now*
  /// but blocked on a guard or capacity: ready tokens never become un-ready
  /// without a firing, so the skip scan would keep failing identically every
  /// idle cycle — stop rescanning until activity resumes. Pure scheduling
  /// state; never affects results.
  bool quiesce_blocked_ = false;
  /// Why the most recent candidate evaluation refused to fire; read by
  /// count_stall(). Always maintained (the stall-cause stats are not gated),
  /// one byte-store per failed candidate.
  StallCause reject_cause_ = StallCause::no_ready_token;

  /// Fig 6 table: [place * num_types + type] -> sorted candidate list.
  std::vector<std::vector<const Transition*>> sorted_;
  std::vector<PlaceId> order_;
  std::vector<StageId> two_list_stages_;
  /// Hot-path caches built by build(): place -> stage object / residence.
  std::vector<PipelineStage*> place_stage_;
  std::vector<std::uint32_t> place_delay_;

  // Token pools: dense chunked arenas + LIFO free lists (allocation-free
  // steady state; recycled tokens of a pool share cache lines).
  TokenArena<InstructionToken> instr_arena_;
  std::vector<InstructionToken*> instr_free_;
  TokenArena<Token> res_arena_;
  std::vector<Token*> res_free_;

  // Per-cycle scratch, reused to avoid allocation in the hot loop.
  std::vector<InstructionToken*> scratch_;
  std::vector<Token*> scratch_flush_;
};

}  // namespace rcpn::core
