// TokenStore: per-stage structure-of-arrays token storage, plus the dense
// chunked arenas the engine's token pools recycle from.
//
// The paper's speed argument (§4) is that the generated simulator performs no
// dynamic discovery in the hot loop. The last discovery left after the PR-2
// lowering pass was *token* discovery: every Process(place) scanned a
// std::vector<Token*> and dereferenced each heap token just to test
// (place, kind, ready) — three fields scattered across a ~160-byte
// InstructionToken. This class splits exactly those filter fields into
// parallel arrays maintained alongside the pointer list:
//
//   ptrs_[i]   the token itself (only touched once a slot passes the filter)
//   keys_[i]   place | kind<<16, packed so one 32-bit compare tests both
//   ready_[i]  first cycle output transitions may consume the slot
//
// Slots are age-ordered (insertion order), matching the firing order the
// interpreted engine established, so both backends see identical semantics by
// construction: this *is* the storage — there is no mirror to drift. The
// fields are written on insert and never change while a token resides in a
// stage (place/ready are only mutated after removal; kind is immutable), so
// no coherence protocol is needed. A second triple of arrays implements the
// two-list (master/slave) incoming buffer.
//
// gen::CompiledModel::lower() sizes these pools (TokenStore::reserve +
// Engine::reserve_token_pools) so the compiled backend never grows a vector
// in steady state; the compiled hot loop scans keys()/ready() directly and
// skips the Token dereference for every slot that fails the filter.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/token.hpp"

namespace rcpn::core {

class TokenStore {
 public:
  /// Packed (place, kind) filter key: one compare replaces two field loads
  /// from the token. Tokens resident in a stage always have place >= 0.
  using Key = std::uint32_t;
  static constexpr Key key(PlaceId place, TokenKind kind) {
    return static_cast<Key>(static_cast<std::uint16_t>(place)) |
           (static_cast<Key>(static_cast<std::uint8_t>(kind)) << 16);
  }

  // -- visible slots (age order) ----------------------------------------------
  std::size_t size() const { return ptrs_.size(); }
  bool empty() const { return ptrs_.empty(); }
  const std::vector<Token*>& ptrs() const { return ptrs_; }
  Token* at(std::size_t i) const { return ptrs_[i]; }
  /// Raw SoA views for filter scans (compiled hot loop).
  const Key* keys() const { return keys_.data(); }
  const Cycle* ready() const { return ready_.data(); }

  // -- incoming buffer (two-list stages) --------------------------------------
  std::size_t incoming_size() const { return in_ptrs_.size(); }
  const std::vector<Token*>& incoming_ptrs() const { return in_ptrs_; }

  std::size_t occupancy() const { return ptrs_.size() + in_ptrs_.size(); }

  /// Pre-size every array (compiled lowering: stage capacity), so steady
  /// state never reallocates.
  void reserve(std::size_t n);

  /// Record `t` with its current (place, kind, ready) — callers set those
  /// fields before insertion (Engine::enter_place) and never mutate them
  /// while the token resides here.
  void insert_visible(Token* t);
  void insert_incoming(Token* t);

  /// Remove a visible token, preserving age order; false if absent.
  bool remove_visible(Token* t);
  /// Same, but with the caller's best guess of the slot index (the compiled
  /// scan loop knows where it saw the token). A correct hint removes without
  /// searching; a stale one (earlier removals, flush actions) falls back to
  /// the linear find, so the hint is never trusted for correctness.
  bool remove_visible_at(std::size_t hint, Token* t);
  /// Remove from either list (flush path); false if absent.
  bool remove_any(Token* t);

  /// Make tokens written during the previous cycle visible and publish their
  /// pipeline state (InstructionToken::state) for hazard queries.
  void promote();

  /// Drop every token, visible first then incoming (the established squash
  /// order); invokes `fn(token)` for each.
  template <typename Fn>
  void clear(Fn&& fn) {
    for (Token* t : ptrs_) fn(t);
    for (Token* t : in_ptrs_) fn(t);
    ptrs_.clear();
    keys_.clear();
    ready_.clear();
    in_ptrs_.clear();
    in_keys_.clear();
    in_ready_.clear();
  }

 private:
  static void erase_slot(std::vector<Token*>& ptrs, std::vector<Key>& keys,
                         std::vector<Cycle>& ready, std::size_t i);

  std::vector<Token*> ptrs_;
  std::vector<Key> keys_;
  std::vector<Cycle> ready_;
  std::vector<Token*> in_ptrs_;
  std::vector<Key> in_keys_;
  std::vector<Cycle> in_ready_;
};

/// Dense chunked token arena: contiguous blocks instead of one heap object
/// per token (the old vector<unique_ptr<T>> pools), so recycled tokens of the
/// same pool share cache lines. Pointers are stable for the arena's lifetime;
/// the engine's free lists hand slots back out LIFO, exactly as before.
template <typename T>
class TokenArena {
 public:
  T* allocate() {
    if (chunks_.empty() || chunks_.back().used == chunks_.back().cap) grow(0);
    Chunk& c = chunks_.back();
    return &c.data[c.used++];
  }

  /// Ensure at least `n` more slots exist without further allocation.
  /// allocate() only serves from the newest chunk, so when the current one
  /// cannot cover `n` a fresh chunk of at least `n` is opened (the old
  /// chunk's tail stays owned-but-unused; reserve is a pre-warm call, not a
  /// steady-state one).
  void reserve(std::size_t n) {
    const std::size_t spare =
        chunks_.empty() ? 0 : chunks_.back().cap - chunks_.back().used;
    if (spare < n) grow(n);
  }

  std::size_t allocated() const {
    std::size_t n = 0;
    for (const Chunk& c : chunks_) n += c.used;
    return n;
  }

 private:
  struct Chunk {
    std::unique_ptr<T[]> data;
    std::size_t cap = 0;
    std::size_t used = 0;
  };

  void grow(std::size_t at_least) {
    std::size_t cap = chunks_.empty() ? 64 : chunks_.back().cap * 2;
    if (cap < at_least) cap = at_least;
    chunks_.push_back(Chunk{std::make_unique<T[]>(cap), cap, 0});
  }

  std::vector<Chunk> chunks_;
};

}  // namespace rcpn::core
