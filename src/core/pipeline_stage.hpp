// Pipeline stages: the storage elements instructions reside in (latches,
// reservation stations, ...). Every place is assigned to a stage; places with
// the same stage share its capacity, and the tokens of a place are physically
// stored in its stage (paper §3, "Places"). Storage is a TokenStore: an
// age-ordered SoA pool both backends operate on, so their token semantics are
// identical by construction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/token.hpp"
#include "core/token_store.hpp"

namespace rcpn::core {

class PipelineStage {
 public:
  PipelineStage(std::string name, StageId id, std::uint32_t capacity, bool is_end)
      : name_(std::move(name)), id_(id), capacity_(capacity), is_end_(is_end) {}

  const std::string& name() const { return name_; }
  StageId id() const { return id_; }
  /// 0 means unlimited (the virtual `end` stage).
  std::uint32_t capacity() const { return capacity_; }
  bool unlimited() const { return capacity_ == 0; }
  bool is_end() const { return is_end_; }

  /// Two-list (master/slave) insertion semantics: tokens added during a cycle
  /// are parked in the incoming buffer and only become visible/consumable
  /// after promote_incoming() at the start of the next cycle (Fig 8, first
  /// loop). Set automatically for circularly-referenced stages, or forced by
  /// a model for conservative forwarding timing.
  bool two_list() const { return two_list_; }
  void set_two_list(bool v) { two_list_ = v; }
  /// True if a model pinned the flag; the engine's analysis then leaves it.
  bool two_list_forced() const { return two_list_forced_; }
  void force_two_list(bool v) {
    two_list_ = v;
    two_list_forced_ = true;
  }

  /// Occupancy counts both visible and not-yet-promoted tokens: a latch is
  /// physically occupied the moment something is written into it.
  std::uint32_t occupancy() const {
    return static_cast<std::uint32_t>(store_.occupancy());
  }

  /// Can `additions` more tokens enter, given `removals` tokens leaving this
  /// stage in the same firing?
  bool has_room(std::uint32_t additions, std::uint32_t removals = 0) const {
    if (unlimited()) return true;
    return occupancy() - removals + additions <= capacity_;
  }

  const std::vector<Token*>& tokens() const { return store_.ptrs(); }
  const std::vector<Token*>& incoming() const { return store_.incoming_ptrs(); }

  /// The SoA token pool itself (filter-field scans without token derefs).
  /// Read-only: all mutation goes through the stage so the two-list routing
  /// and occupancy invariants hold.
  const TokenStore& store() const { return store_; }
  /// Pre-size the pool (gen:: lowering); the one sizing hook lowering needs.
  void reserve_store(std::size_t n) { store_.reserve(n); }

  void insert(Token* t) {
    if (two_list_) {
      store_.insert_incoming(t);
    } else {
      store_.insert_visible(t);
    }
  }

  /// Checkpoint restore: place `t` directly into the recorded list (visible
  /// or incoming), bypassing the two-list routing — a snapshot taken at a
  /// cycle boundary may hold not-yet-promoted tokens, and restore must
  /// reproduce both lists verbatim, not re-route.
  void insert_restored(Token* t, bool incoming) {
    if (incoming) {
      store_.insert_incoming(t);
    } else {
      store_.insert_visible(t);
    }
  }

  /// Remove a (visible) token; returns false if absent.
  bool remove(Token* t) { return store_.remove_visible(t); }
  /// Remove with a slot-index hint (see TokenStore::remove_visible_at).
  bool remove_at(std::size_t hint, Token* t) { return store_.remove_visible_at(hint, t); }

  /// Remove a token from either list (flush path); returns false if absent.
  bool remove_any(Token* t) { return store_.remove_any(t); }

  /// Make tokens written during the previous cycle visible.
  void promote_incoming() { store_.promote(); }

  /// Drop every token; invokes `fn(token)` for each so the caller can run
  /// squash hooks / recycle storage.
  template <typename Fn>
  void clear_tokens(Fn&& fn) {
    store_.clear(fn);
  }

 private:
  std::string name_;
  StageId id_;
  std::uint32_t capacity_;
  bool is_end_;
  bool two_list_ = false;
  bool two_list_forced_ = false;
  TokenStore store_;
};

}  // namespace rcpn::core
