// Pipeline stages: the storage elements instructions reside in (latches,
// reservation stations, ...). Every place is assigned to a stage; places with
// the same stage share its capacity, and the tokens of a place are physically
// stored in its stage (paper §3, "Places").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/token.hpp"

namespace rcpn::core {

class PipelineStage {
 public:
  PipelineStage(std::string name, StageId id, std::uint32_t capacity, bool is_end)
      : name_(std::move(name)), id_(id), capacity_(capacity), is_end_(is_end) {}

  const std::string& name() const { return name_; }
  StageId id() const { return id_; }
  /// 0 means unlimited (the virtual `end` stage).
  std::uint32_t capacity() const { return capacity_; }
  bool unlimited() const { return capacity_ == 0; }
  bool is_end() const { return is_end_; }

  /// Two-list (master/slave) insertion semantics: tokens added during a cycle
  /// are parked in the incoming buffer and only become visible/consumable
  /// after promote_incoming() at the start of the next cycle (Fig 8, first
  /// loop). Set automatically for circularly-referenced stages, or forced by
  /// a model for conservative forwarding timing.
  bool two_list() const { return two_list_; }
  void set_two_list(bool v) { two_list_ = v; }
  /// True if a model pinned the flag; the engine's analysis then leaves it.
  bool two_list_forced() const { return two_list_forced_; }
  void force_two_list(bool v) {
    two_list_ = v;
    two_list_forced_ = true;
  }

  /// Occupancy counts both visible and not-yet-promoted tokens: a latch is
  /// physically occupied the moment something is written into it.
  std::uint32_t occupancy() const {
    return static_cast<std::uint32_t>(tokens_.size() + incoming_.size());
  }

  /// Can `additions` more tokens enter, given `removals` tokens leaving this
  /// stage in the same firing?
  bool has_room(std::uint32_t additions, std::uint32_t removals = 0) const {
    if (unlimited()) return true;
    return occupancy() - removals + additions <= capacity_;
  }

  const std::vector<Token*>& tokens() const { return tokens_; }
  const std::vector<Token*>& incoming() const { return incoming_; }

  void insert(Token* t) {
    if (two_list_) {
      incoming_.push_back(t);
    } else {
      tokens_.push_back(t);
    }
  }

  /// Remove a (visible) token; returns false if absent.
  bool remove(Token* t);

  /// Remove a token from either list (flush path); returns false if absent.
  bool remove_any(Token* t);

  /// Make tokens written during the previous cycle visible.
  void promote_incoming();

  /// Drop every token; invokes `fn(token)` for each so the caller can run
  /// squash hooks / recycle storage.
  template <typename Fn>
  void clear_tokens(Fn&& fn) {
    for (Token* t : tokens_) fn(t);
    for (Token* t : incoming_) fn(t);
    tokens_.clear();
    incoming_.clear();
  }

 private:
  std::string name_;
  StageId id_;
  std::uint32_t capacity_;
  bool is_end_;
  bool two_list_ = false;
  bool two_list_forced_ = false;
  std::vector<Token*> tokens_;
  std::vector<Token*> incoming_;
};

}  // namespace rcpn::core
