#include "core/pipeline_stage.hpp"

#include <algorithm>

namespace rcpn::core {

bool PipelineStage::remove(Token* t) {
  auto it = std::find(tokens_.begin(), tokens_.end(), t);
  if (it == tokens_.end()) return false;
  tokens_.erase(it);
  return true;
}

bool PipelineStage::remove_any(Token* t) {
  if (remove(t)) return true;
  auto it = std::find(incoming_.begin(), incoming_.end(), t);
  if (it == incoming_.end()) return false;
  incoming_.erase(it);
  return true;
}

void PipelineStage::promote_incoming() {
  if (incoming_.empty()) return;
  for (Token* t : incoming_) {
    tokens_.push_back(t);
    if (t->kind == TokenKind::instruction)
      static_cast<InstructionToken*>(t)->state = t->place;
  }
  incoming_.clear();
}

}  // namespace rcpn::core
