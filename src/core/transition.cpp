#include "core/transition.hpp"

namespace rcpn::core {

PlaceId Transition::trigger_place() const {
  for (const InArc& a : in_)
    if (a.need == ArcNeed::trigger) return a.place;
  return kNoPlace;
}

std::uint8_t Transition::trigger_priority() const {
  for (const InArc& a : in_)
    if (a.need == ArcNeed::trigger) return a.priority;
  return 0;
}

}  // namespace rcpn::core
