#include "core/options_signature.hpp"

#include <stdexcept>

namespace rcpn::core {

namespace {

/// One schedule-affecting flag: its name (== the EngineOptions member name)
/// and pointer-to-member. Table order fixes both the bit assignment and the
/// signature field order, so APPEND new flags — never reorder.
struct ScheduleOption {
  const char* name;
  bool EngineOptions::*member;
};

constexpr ScheduleOption kScheduleOptions[] = {
    {"two_list_state_refs", &EngineOptions::two_list_state_refs},
    {"force_two_list_all", &EngineOptions::force_two_list_all},
    {"linear_search", &EngineOptions::linear_search},
    {"quiescence_skip", &EngineOptions::quiescence_skip},
};

constexpr unsigned kNumScheduleOptions =
    sizeof(kScheduleOptions) / sizeof(kScheduleOptions[0]);

static_assert(kNumScheduleOptions <= 32, "options_bits is a uint32_t");

}  // namespace

unsigned num_schedule_options() { return kNumScheduleOptions; }

const char* schedule_option_name(unsigned i) { return kScheduleOptions[i].name; }

bool schedule_option_get(unsigned i, const EngineOptions& options) {
  return options.*kScheduleOptions[i].member;
}

void schedule_option_set(unsigned i, EngineOptions& options, bool value) {
  options.*kScheduleOptions[i].member = value;
}

std::uint32_t options_bits(const EngineOptions& options) {
  std::uint32_t bits = 0;
  for (unsigned i = 0; i < kNumScheduleOptions; ++i)
    if (schedule_option_get(i, options)) bits |= 1u << i;
  return bits;
}

std::string options_bits_desc(std::uint32_t bits) {
  std::string desc;
  for (unsigned i = 0; i < kNumScheduleOptions; ++i) {
    if (!(bits & (1u << i))) continue;
    if (!desc.empty()) desc += ",";
    desc += kScheduleOptions[i].name;
  }
  return desc.empty() ? "(none)" : desc;
}

std::string options_signature(const EngineOptions& options) {
  std::string sig;
  for (unsigned i = 0; i < kNumScheduleOptions; ++i) {
    if (!sig.empty()) sig += ",";
    sig += kScheduleOptions[i].name;
    sig += schedule_option_get(i, options) ? "=1" : "=0";
  }
  return sig;
}

void apply_options_signature(EngineOptions& options, std::string_view signature) {
  std::string_view rest = signature;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view field =
        comma == std::string_view::npos ? rest : rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{} : rest.substr(comma + 1);
    if (field.empty()) continue;

    const std::size_t eq = field.find('=');
    if (eq == std::string_view::npos)
      throw std::invalid_argument("options signature field '" + std::string(field) +
                                  "' is not name=0|1");
    const std::string_view name = field.substr(0, eq);
    const std::string_view value = field.substr(eq + 1);
    if (value != "0" && value != "1")
      throw std::invalid_argument("options signature flag '" + std::string(name) +
                                  "' has value '" + std::string(value) +
                                  "', expected 0 or 1");
    bool found = false;
    for (unsigned i = 0; i < kNumScheduleOptions; ++i) {
      if (name != kScheduleOptions[i].name) continue;
      schedule_option_set(i, options, value == "1");
      found = true;
      break;
    }
    if (!found)
      throw std::invalid_argument("unknown schedule-affecting option flag '" +
                                  std::string(name) + "' in options signature");
  }
}

}  // namespace rcpn::core
