// The ONE table of schedule-affecting EngineOptions.
//
// Three encoders used to spell these flags independently — the generated
// artifact registry key (gen::generated_options_key), the Traits stamp in
// emitted simulators, and farm::job_key — so adding a schedule-affecting
// option could silently miss one of them. They now all derive from this
// table: a new flag is added here once and every encoder picks it up.
//
// "Schedule-affecting" means the flag changes which tokens fire when
// (two-list analysis, candidate-search strategy, quiescence skipping).
// Runtime knobs (backend, deadlock_limit, obs) are deliberately absent.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/engine.hpp"

namespace rcpn::core {

/// Number of schedule-affecting option flags.
unsigned num_schedule_options();

/// Name of flag `i` — identical to the EngineOptions member name
/// ("two_list_state_refs", "force_two_list_all", ...).
const char* schedule_option_name(unsigned i);

/// Read flag `i` from `options`.
bool schedule_option_get(unsigned i, const EngineOptions& options);

/// Write flag `i` into `options`.
void schedule_option_set(unsigned i, EngineOptions& options, bool value);

/// Bitmask of the schedule-affecting flags (flag i -> bit i). Stable across
/// releases for existing flags: this is the generated-artifact registry key.
std::uint32_t options_bits(const EngineOptions& options);

/// Comma-separated names of the flags set in `bits`, or "(none)" — the
/// human-readable spelling used in error messages and emitted headers.
std::string options_bits_desc(std::uint32_t bits);

/// Canonical "name=0|1,name=0|1,..." rendering of every schedule-affecting
/// flag, in table order. Used verbatim in farm job keys and serialized model
/// descriptions, so two EngineOptions with equal signatures are
/// schedule-equivalent.
std::string options_signature(const EngineOptions& options);

/// Apply a signature produced by options_signature() onto `options`,
/// overwriting only the schedule-affecting flags it names. Throws
/// std::invalid_argument naming the offending token on an unknown flag name
/// or a value other than 0/1.
void apply_options_signature(EngineOptions& options, std::string_view signature);

}  // namespace rcpn::core
