// Pure instruction semantics, shared verbatim by the functional ISS, the
// RCPN processor models and the SimpleScalar-style baseline so that all three
// simulators are architecturally identical by construction.
#include "arm/arm_isa.hpp"

#include "util/bits.hpp"

namespace rcpn::arm {

using util::add_carry;
using util::add_overflow;

bool cond_pass(Cond cond, std::uint32_t cpsr) {
  const bool n = (cpsr & kFlagN) != 0;
  const bool z = (cpsr & kFlagZ) != 0;
  const bool c = (cpsr & kFlagC) != 0;
  const bool v = (cpsr & kFlagV) != 0;
  switch (cond) {
    case Cond::eq: return z;
    case Cond::ne: return !z;
    case Cond::cs: return c;
    case Cond::cc: return !c;
    case Cond::mi: return n;
    case Cond::pl: return !n;
    case Cond::vs: return v;
    case Cond::vc: return !v;
    case Cond::hi: return c && !z;
    case Cond::ls: return !c || z;
    case Cond::ge: return n == v;
    case Cond::lt: return n != v;
    case Cond::gt: return !z && n == v;
    case Cond::le: return z || n != v;
    case Cond::al: return true;
    case Cond::nv: return false;
  }
  return false;
}

const char* cond_name(Cond cond) {
  static const char* names[16] = {"eq", "ne", "cs", "cc", "mi", "pl", "vs", "vc",
                                  "hi", "ls", "ge", "lt", "gt", "le", "", "nv"};
  return names[static_cast<unsigned>(cond)];
}

const char* dp_op_name(DpOp op) {
  static const char* names[16] = {"and", "eor", "sub", "rsb", "add", "adc",
                                  "sbc", "rsc", "tst", "teq", "cmp", "cmn",
                                  "orr", "mov", "bic", "mvn"};
  return names[static_cast<unsigned>(op)];
}

const char* shift_name(ShiftKind k) {
  static const char* names[5] = {"lsl", "lsr", "asr", "ror", "rrx"};
  return names[static_cast<unsigned>(k)];
}

const char* op_class_name(OpClass c) {
  static const char* names[kNumOpClasses] = {"DataProc", "Multiply", "LoadStore",
                                             "LoadStoreMultiple", "Branch", "Swi"};
  return names[static_cast<unsigned>(c)];
}

bool DecodedInstruction::writes_rd() const {
  switch (cls) {
    case OpClass::data_proc: return !dp_no_result(dp_op) && !branch_via_reg;
    case OpClass::multiply: return true;
    case OpClass::load_store: return is_load;
    default: return false;
  }
}

bool DecodedInstruction::reads_carry() const {
  if (cls != OpClass::data_proc) return false;
  if (dp_op == DpOp::adc || dp_op == DpOp::sbc || dp_op == DpOp::rsc) return true;
  // RRX and LSR/ASR/ROR #0 forms consume the carry via the shifter; also any
  // logical op with S must preserve C/V which requires reading the old CPSR.
  if (!imm_operand && shift == ShiftKind::rrx) return true;
  return sets_flags;
}

ShifterOut eval_shifter(const DecodedInstruction& d, std::uint32_t rm_val,
                        std::uint32_t rs_val, bool carry_in) {
  ShifterOut out;
  if (d.imm_operand) {
    out.value = d.imm;
    out.carry = d.imm_carry_valid ? d.imm_carry : carry_in;
    return out;
  }
  const std::uint32_t v = rm_val;
  std::uint32_t amount;
  if (d.shift_by_reg) {
    amount = rs_val & 0xff;
    if (amount == 0) return {v, carry_in};
  } else {
    amount = d.shift_amount;
  }
  switch (d.shift) {
    case ShiftKind::lsl:
      if (amount == 0) return {v, carry_in};
      if (amount < 32) return {v << amount, util::bit(v, 32 - amount) != 0};
      if (amount == 32) return {0, (v & 1) != 0};
      return {0, false};
    case ShiftKind::lsr:
      // Immediate LSR #0 encodes LSR #32.
      if (!d.shift_by_reg && amount == 0) amount = 32;
      if (amount < 32) return {v >> amount, util::bit(v, amount - 1) != 0};
      if (amount == 32) return {0, (v >> 31) != 0};
      return {0, false};
    case ShiftKind::asr: {
      if (!d.shift_by_reg && amount == 0) amount = 32;
      if (amount < 32)
        return {static_cast<std::uint32_t>(static_cast<std::int32_t>(v) >>
                                           amount),
                util::bit(v, amount - 1) != 0};
      const bool sign = (v >> 31) != 0;
      return {sign ? 0xffff'ffffu : 0u, sign};
    }
    case ShiftKind::ror: {
      const std::uint32_t r = amount & 31;
      if (amount == 0) return {v, carry_in};
      if (r == 0) return {v, (v >> 31) != 0};  // multiple of 32
      return {util::rotr32(v, r), util::bit(v, r - 1) != 0};
    }
    case ShiftKind::rrx:
      return {(v >> 1) | (carry_in ? 0x8000'0000u : 0u), (v & 1) != 0};
  }
  return out;
}

namespace {

std::uint32_t pack_nzcv(bool n, bool z, bool c, bool v) {
  return (n ? kFlagN : 0) | (z ? kFlagZ : 0) | (c ? kFlagC : 0) | (v ? kFlagV : 0);
}

}  // namespace

DataProcOut exec_dataproc(const DecodedInstruction& d, std::uint32_t rn_val,
                          std::uint32_t rm_val, std::uint32_t rs_val,
                          std::uint32_t cpsr) {
  const bool carry_in = (cpsr & kFlagC) != 0;
  const ShifterOut sh = eval_shifter(d, rm_val, rs_val, carry_in);
  const std::uint32_t a = rn_val;
  const std::uint32_t b = sh.value;

  DataProcOut out;
  out.writes_rd = !dp_no_result(d.dp_op);
  bool c = sh.carry;            // logical ops: shifter carry
  bool v = (cpsr & kFlagV) != 0;  // logical ops: V unchanged
  std::uint32_t r = 0;
  switch (d.dp_op) {
    case DpOp::and_: r = a & b; break;
    case DpOp::eor: r = a ^ b; break;
    case DpOp::sub:
      r = a - b;
      c = add_carry(a, ~b, true);
      v = add_overflow(a, ~b, true);
      break;
    case DpOp::rsb:
      r = b - a;
      c = add_carry(b, ~a, true);
      v = add_overflow(b, ~a, true);
      break;
    case DpOp::add:
      r = a + b;
      c = add_carry(a, b, false);
      v = add_overflow(a, b, false);
      break;
    case DpOp::adc:
      r = a + b + (carry_in ? 1 : 0);
      c = add_carry(a, b, carry_in);
      v = add_overflow(a, b, carry_in);
      break;
    case DpOp::sbc:
      r = a - b - (carry_in ? 0 : 1);
      c = add_carry(a, ~b, carry_in);
      v = add_overflow(a, ~b, carry_in);
      break;
    case DpOp::rsc:
      r = b - a - (carry_in ? 0 : 1);
      c = add_carry(b, ~a, carry_in);
      v = add_overflow(b, ~a, carry_in);
      break;
    case DpOp::tst: r = a & b; break;
    case DpOp::teq: r = a ^ b; break;
    case DpOp::cmp:
      r = a - b;
      c = add_carry(a, ~b, true);
      v = add_overflow(a, ~b, true);
      break;
    case DpOp::cmn:
      r = a + b;
      c = add_carry(a, b, false);
      v = add_overflow(a, b, false);
      break;
    case DpOp::orr: r = a | b; break;
    case DpOp::mov: r = b; break;
    case DpOp::bic: r = a & ~b; break;
    case DpOp::mvn: r = ~b; break;
  }
  out.result = r;
  out.writes_flags = d.sets_flags;
  out.nzcv = pack_nzcv((r >> 31) != 0, r == 0, c, v);
  return out;
}

MulOut exec_mul(const DecodedInstruction& d, std::uint32_t rm_val,
                std::uint32_t rs_val, std::uint32_t rn_val, std::uint32_t cpsr) {
  MulOut out;
  out.result = rm_val * rs_val + (d.accumulate ? rn_val : 0);
  out.writes_flags = d.sets_flags;
  // MUL S: N and Z from the result, C unpredictable-but-preserved here,
  // V unchanged.
  out.nzcv = pack_nzcv((out.result >> 31) != 0, out.result == 0,
                       (cpsr & kFlagC) != 0, (cpsr & kFlagV) != 0);
  return out;
}

std::uint32_t mul_extra_cycles(std::uint32_t rs_val) {
  // ARM7/SA-110-style early termination on the magnitude of the multiplier.
  if ((rs_val & 0xffff'ff00u) == 0 || (rs_val & 0xffff'ff00u) == 0xffff'ff00u)
    return 0;
  if ((rs_val & 0xffff'0000u) == 0 || (rs_val & 0xffff'0000u) == 0xffff'0000u)
    return 1;
  if ((rs_val & 0xff00'0000u) == 0 || (rs_val & 0xff00'0000u) == 0xff00'0000u)
    return 2;
  return 3;
}

LsAddress ls_address(const DecodedInstruction& d, std::uint32_t rn_val,
                     std::uint32_t rm_val, std::uint32_t cpsr) {
  std::uint32_t offset;
  if (d.reg_offset) {
    // Scaled register offset uses the immediate-shift forms only.
    const ShifterOut sh = eval_shifter(d, rm_val, 0, (cpsr & kFlagC) != 0);
    offset = sh.value;
  } else {
    offset = d.offset_imm;
  }
  const std::uint32_t applied = d.add_offset ? rn_val + offset : rn_val - offset;
  LsAddress out;
  if (d.pre_index) {
    out.ea = applied;
    out.rn_after = applied;
    out.rn_writeback = d.writeback;
  } else {
    out.ea = rn_val;
    out.rn_after = applied;
    out.rn_writeback = true;  // post-indexed always writes back
  }
  return out;
}

LsmPlan lsm_plan(const DecodedInstruction& d, std::uint32_t rn_val) {
  LsmPlan plan;
  plan.count = util::popcount32(d.reg_list);
  const std::uint32_t bytes = 4 * plan.count;
  if (d.lsm_up) {
    plan.start = d.lsm_before ? rn_val + 4 : rn_val;
    plan.rn_after = rn_val + bytes;
  } else {
    plan.start = d.lsm_before ? rn_val - bytes : rn_val - bytes + 4;
    plan.rn_after = rn_val - bytes;
  }
  return plan;
}

}  // namespace rcpn::arm
