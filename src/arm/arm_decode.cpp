// Binary decoder: raw ARM word -> DecodedInstruction, classified into the
// paper's six operation classes. Runs once per static instruction; the
// result is cached inside the instruction token (paper §4: "we do not need
// to re-decode the instruction in different pipeline stages").
#include "arm/arm_isa.hpp"

#include "util/bits.hpp"

namespace rcpn::arm {

using util::bit;
using util::bits;

namespace {

void decode_shifter(DecodedInstruction& d, std::uint32_t raw) {
  if (bit(raw, 25)) {  // immediate
    d.imm_operand = true;
    const std::uint32_t rot = bits(raw, 11, 8) * 2;
    const std::uint32_t imm8 = bits(raw, 7, 0);
    d.imm = util::rotr32(imm8, rot);
    d.imm_carry_valid = rot != 0;
    d.imm_carry = (d.imm >> 31) != 0;
    return;
  }
  d.imm_operand = false;
  d.rm = static_cast<std::uint8_t>(bits(raw, 3, 0));
  const auto kind = static_cast<ShiftKind>(bits(raw, 6, 5));
  if (bit(raw, 4)) {  // shift by register
    d.shift_by_reg = true;
    d.shift = kind;
    d.rs = static_cast<std::uint8_t>(bits(raw, 11, 8));
  } else {
    d.shift_by_reg = false;
    const std::uint32_t amount = bits(raw, 11, 7);
    // ROR #0 encodes RRX.
    d.shift = (kind == ShiftKind::ror && amount == 0) ? ShiftKind::rrx : kind;
    d.shift_amount = static_cast<std::uint8_t>(amount);
  }
}

}  // namespace

DecodedInstruction decode(std::uint32_t raw, std::uint32_t pc) {
  DecodedInstruction d;
  d.raw = raw;
  d.pc = pc;
  d.cond = static_cast<Cond>(bits(raw, 31, 28));

  // SWI: cond 1111 imm24.
  if ((raw & 0x0f00'0000u) == 0x0f00'0000u) {
    d.cls = OpClass::swi;
    d.swi_imm = bits(raw, 23, 0);
    return d;
  }

  // Branch: cond 101 L offset24.
  if ((raw & 0x0e00'0000u) == 0x0a00'0000u) {
    d.cls = OpClass::branch;
    d.link = bit(raw, 24) != 0;
    d.branch_offset = util::sign_extend(bits(raw, 23, 0), 24) << 2;
    return d;
  }

  // Multiply: cond 000000 A S Rd Rn Rs 1001 Rm.
  if ((raw & 0x0fc0'00f0u) == 0x0000'0090u) {
    d.cls = OpClass::multiply;
    d.accumulate = bit(raw, 21) != 0;
    d.sets_flags = bit(raw, 20) != 0;
    d.rd = static_cast<std::uint8_t>(bits(raw, 19, 16));
    d.rn = static_cast<std::uint8_t>(bits(raw, 15, 12));  // accumulator
    d.rs = static_cast<std::uint8_t>(bits(raw, 11, 8));
    d.rm = static_cast<std::uint8_t>(bits(raw, 3, 0));
    if (!d.accumulate) d.rn = kNumRegs;
    return d;
  }

  // Load/store multiple: cond 100 P U S W L Rn reglist.
  if ((raw & 0x0e00'0000u) == 0x0800'0000u) {
    d.cls = OpClass::load_store_multiple;
    d.lsm_before = bit(raw, 24) != 0;
    d.lsm_up = bit(raw, 23) != 0;
    d.writeback = bit(raw, 21) != 0;
    d.is_load = bit(raw, 20) != 0;
    d.rn = static_cast<std::uint8_t>(bits(raw, 19, 16));
    d.reg_list = static_cast<std::uint16_t>(bits(raw, 15, 0));
    return d;
  }

  // Undefined space: cond 011 xxxx with bit 4 set (ARMv4 reserves it).
  if ((raw & 0x0e00'0010u) == 0x0600'0010u) {
    d.cls = OpClass::swi;
    d.swi_imm = 0xdead00;
    return d;
  }

  // Load/store single: cond 01 I P U B W L Rn Rd offset.
  if ((raw & 0x0c00'0000u) == 0x0400'0000u) {
    d.cls = OpClass::load_store;
    d.reg_offset = bit(raw, 25) != 0;
    d.pre_index = bit(raw, 24) != 0;
    d.add_offset = bit(raw, 23) != 0;
    d.is_byte = bit(raw, 22) != 0;
    d.writeback = bit(raw, 21) != 0;
    d.is_load = bit(raw, 20) != 0;
    d.rn = static_cast<std::uint8_t>(bits(raw, 19, 16));
    d.rd = static_cast<std::uint8_t>(bits(raw, 15, 12));
    if (d.reg_offset) {
      d.rm = static_cast<std::uint8_t>(bits(raw, 3, 0));
      d.shift = static_cast<ShiftKind>(bits(raw, 6, 5));
      const std::uint32_t amount = bits(raw, 11, 7);
      if (d.shift == ShiftKind::ror && amount == 0) d.shift = ShiftKind::rrx;
      d.shift_amount = static_cast<std::uint8_t>(amount);
      d.imm_operand = false;
    } else {
      d.offset_imm = bits(raw, 11, 0);
    }
    return d;
  }

  // Data processing: cond 00 I opcode S Rn Rd shifter.
  if ((raw & 0x0c00'0000u) == 0x0000'0000u) {
    d.cls = OpClass::data_proc;
    d.dp_op = static_cast<DpOp>(bits(raw, 24, 21));
    d.sets_flags = bit(raw, 20) != 0;
    d.rn = static_cast<std::uint8_t>(bits(raw, 19, 16));
    d.rd = static_cast<std::uint8_t>(bits(raw, 15, 12));
    decode_shifter(d, raw);
    if (dp_no_rn(d.dp_op)) d.rn = kNumRegs;
    if (dp_no_result(d.dp_op)) d.rd = kNumRegs;
    // A data-processing write to the PC is architecturally a branch
    // (`mov pc, lr` returns); classify it into the Branch sub-net so the
    // pipeline model handles the control transfer.
    if (d.rd == kRegPc) {
      d.cls = OpClass::branch;
      d.branch_via_reg = true;
    }
    return d;
  }

  // Unknown encoding: decode to a trapping SWI so all simulators fail loudly
  // and identically.
  d.cls = OpClass::swi;
  d.swi_imm = 0xdead00;
  return d;
}

}  // namespace rcpn::arm
