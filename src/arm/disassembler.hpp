// Disassembler: DecodedInstruction -> assembly text. Primarily a debugging
// and trace aid; round-trip tests (assemble -> decode -> disassemble ->
// re-assemble) pin down both directions of the encoding tables.
#pragma once

#include <cstdint>
#include <string>

#include "arm/arm_isa.hpp"

namespace rcpn::arm {

std::string disassemble(const DecodedInstruction& d);
std::string disassemble(std::uint32_t raw, std::uint32_t pc);

}  // namespace rcpn::arm
