// Two-pass ARM assembler.
//
// Stands in for the paper's arm-linux-gcc toolchain (see DESIGN.md §2): the
// six benchmark kernels are written in this assembly dialect, assembled at
// runtime and loaded into the simulated memory. Supports the full ARM7
// subset of arm_isa.hpp plus the usual conveniences:
//
//   labels:            loop:  ldr r0, [r1], #4
//   condition codes:   addne, blt, movges, ...
//   aliases:           sp lr pc ip fp sl, hs/lo, nop, push/pop
//   pseudo:            ldr rX, =imm_or_label   (literal pools, .ltorg)
//                      adr rX, label           (pc-relative add/sub)
//   directives:        .org .word .byte .space .align .ascii .asciz
//                      .equ .ltorg .global (ignored)
//   comments:          ; @ //
//
// Errors carry the 1-based source line for actionable messages.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

#include "sys/program.hpp"

namespace rcpn::arm {

class AsmError : public std::runtime_error {
 public:
  AsmError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

struct AssemblyResult {
  sys::Program program;
  std::map<std::string, std::uint32_t> symbols;
};

/// Assemble `source`; the image starts at `origin` (also the entry point
/// unless a `_start` label exists). Throws AsmError on the first error.
AssemblyResult assemble(const std::string& source, const std::string& name = "prog",
                        std::uint32_t origin = 0x8000);

}  // namespace rcpn::arm
