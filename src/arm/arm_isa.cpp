// Encoders (see encode.hpp). Kept next to the decoder so the two sides of
// the encoding tables can be reviewed together.
#include "arm/encode.hpp"

#include <cassert>

#include "util/bits.hpp"

namespace rcpn::arm::enc {

namespace {
constexpr std::uint32_t cond_bits(Cond c) { return static_cast<std::uint32_t>(c) << 28; }
}  // namespace

std::optional<std::uint32_t> encode_imm(std::uint32_t value) {
  for (unsigned rot = 0; rot < 16; ++rot) {
    const std::uint32_t rotated = util::rotr32(value, 32 - 2 * rot) ;
    // value == imm8 ror (2*rot)  <=>  imm8 == value rol (2*rot)
    if ((rotated & ~0xffu) == 0) return (rot << 8) | rotated;
  }
  return std::nullopt;
}

std::uint32_t dataproc_imm(Cond cond, DpOp op, bool s, unsigned rd, unsigned rn,
                           std::uint32_t imm12) {
  assert(imm12 <= 0xfff);
  return cond_bits(cond) | (1u << 25) | (static_cast<std::uint32_t>(op) << 21) |
         (s ? 1u << 20 : 0) | (rn << 16) | (rd << 12) | imm12;
}

std::uint32_t dataproc_reg(Cond cond, DpOp op, bool s, unsigned rd, unsigned rn,
                           unsigned rm, ShiftKind shift, unsigned amount) {
  assert(amount < 32);
  std::uint32_t sh = static_cast<std::uint32_t>(shift);
  if (shift == ShiftKind::rrx) {
    sh = static_cast<std::uint32_t>(ShiftKind::ror);
    amount = 0;
  }
  return cond_bits(cond) | (static_cast<std::uint32_t>(op) << 21) |
         (s ? 1u << 20 : 0) | (rn << 16) | (rd << 12) | (amount << 7) | (sh << 5) | rm;
}

std::uint32_t dataproc_regshift(Cond cond, DpOp op, bool s, unsigned rd, unsigned rn,
                                unsigned rm, ShiftKind shift, unsigned rs) {
  assert(shift != ShiftKind::rrx);
  return cond_bits(cond) | (static_cast<std::uint32_t>(op) << 21) |
         (s ? 1u << 20 : 0) | (rn << 16) | (rd << 12) | (rs << 8) |
         (static_cast<std::uint32_t>(shift) << 5) | (1u << 4) | rm;
}

std::uint32_t mul(Cond cond, bool s, unsigned rd, unsigned rm, unsigned rs) {
  return cond_bits(cond) | (s ? 1u << 20 : 0) | (rd << 16) | (rs << 8) | (0x9u << 4) |
         rm;
}

std::uint32_t mla(Cond cond, bool s, unsigned rd, unsigned rm, unsigned rs,
                  unsigned rn) {
  return cond_bits(cond) | (1u << 21) | (s ? 1u << 20 : 0) | (rd << 16) | (rn << 12) |
         (rs << 8) | (0x9u << 4) | rm;
}

std::uint32_t ldr_str_imm(Cond cond, bool load, bool byte, unsigned rd, unsigned rn,
                          std::int32_t offset, bool pre, bool writeback) {
  const bool add = offset >= 0;
  const std::uint32_t mag = static_cast<std::uint32_t>(add ? offset : -offset);
  assert(mag <= 0xfff);
  return cond_bits(cond) | (1u << 26) | (pre ? 1u << 24 : 0) | (add ? 1u << 23 : 0) |
         (byte ? 1u << 22 : 0) | (writeback ? 1u << 21 : 0) | (load ? 1u << 20 : 0) |
         (rn << 16) | (rd << 12) | mag;
}

std::uint32_t ldr_str_reg(Cond cond, bool load, bool byte, unsigned rd, unsigned rn,
                          unsigned rm, ShiftKind shift, unsigned amount, bool add,
                          bool pre, bool writeback) {
  assert(amount < 32);
  std::uint32_t sh = static_cast<std::uint32_t>(shift);
  if (shift == ShiftKind::rrx) {
    sh = static_cast<std::uint32_t>(ShiftKind::ror);
    amount = 0;
  }
  return cond_bits(cond) | (1u << 26) | (1u << 25) | (pre ? 1u << 24 : 0) |
         (add ? 1u << 23 : 0) | (byte ? 1u << 22 : 0) | (writeback ? 1u << 21 : 0) |
         (load ? 1u << 20 : 0) | (rn << 16) | (rd << 12) | (amount << 7) | (sh << 5) |
         rm;
}

std::uint32_t ldm_stm(Cond cond, bool load, bool before, bool up, bool writeback,
                      unsigned rn, std::uint16_t reg_list) {
  return cond_bits(cond) | (1u << 27) | (before ? 1u << 24 : 0) | (up ? 1u << 23 : 0) |
         (writeback ? 1u << 21 : 0) | (load ? 1u << 20 : 0) | (rn << 16) | reg_list;
}

std::uint32_t branch(Cond cond, bool link, std::int32_t offset) {
  assert((offset & 3) == 0);
  const std::uint32_t field = static_cast<std::uint32_t>(offset >> 2) & 0x00ff'ffffu;
  return cond_bits(cond) | (0x5u << 25) | (link ? 1u << 24 : 0) | field;
}

std::uint32_t swi(Cond cond, std::uint32_t imm24) {
  assert(imm24 <= 0x00ff'ffffu);
  return cond_bits(cond) | (0xfu << 24) | imm24;
}

}  // namespace rcpn::arm::enc
