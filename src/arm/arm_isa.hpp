// ARM7 (ARMv4, ARM state, user mode) instruction-set subset.
//
// This is the ISA the paper's evaluation uses ("the compiler only uses ARM7
// instruction-set and therefore we only needed to model those instructions").
// The subset covers everything our six benchmark kernels and the assembler
// emit: all 16 data-processing opcodes with the full shifter-operand forms,
// MUL/MLA, LDR/STR (word/byte, immediate/register offset, pre/post-indexed,
// writeback), LDM/STM (all four address modes, writeback), B/BL, SWI and the
// usual condition codes. Instructions are grouped into the paper's six
// operation classes (§5: "The ARM instruction set was implemented using six
// operation-classes").
#pragma once

#include <cstdint>
#include <string>

namespace rcpn::arm {

// -- architectural constants ---------------------------------------------------

constexpr unsigned kNumRegs = 16;   // r0..r15 (r13=sp, r14=lr, r15=pc)
constexpr unsigned kRegSp = 13;
constexpr unsigned kRegLr = 14;
constexpr unsigned kRegPc = 15;
/// Register-file cell index of the CPSR; flags take part in the same hazard
/// machinery as general registers (a RegRef over cell 16).
constexpr unsigned kCpsrCell = 16;
constexpr unsigned kNumCells = 17;

// CPSR flag bits.
constexpr std::uint32_t kFlagN = 1u << 31;
constexpr std::uint32_t kFlagZ = 1u << 30;
constexpr std::uint32_t kFlagC = 1u << 29;
constexpr std::uint32_t kFlagV = 1u << 28;

enum class Cond : std::uint8_t {
  eq = 0x0, ne = 0x1, cs = 0x2, cc = 0x3, mi = 0x4, pl = 0x5, vs = 0x6, vc = 0x7,
  hi = 0x8, ls = 0x9, ge = 0xA, lt = 0xB, gt = 0xC, le = 0xD, al = 0xE, nv = 0xF,
};

/// True iff `cond` passes under the given CPSR value.
bool cond_pass(Cond cond, std::uint32_t cpsr);
const char* cond_name(Cond cond);

enum class DpOp : std::uint8_t {
  and_ = 0x0, eor = 0x1, sub = 0x2, rsb = 0x3, add = 0x4, adc = 0x5, sbc = 0x6,
  rsc = 0x7, tst = 0x8, teq = 0x9, cmp = 0xA, cmn = 0xB, orr = 0xC, mov = 0xD,
  bic = 0xE, mvn = 0xF,
};
const char* dp_op_name(DpOp op);
/// TST/TEQ/CMP/CMN: flags only, no destination write.
constexpr bool dp_no_result(DpOp op) {
  return op == DpOp::tst || op == DpOp::teq || op == DpOp::cmp || op == DpOp::cmn;
}
/// MOV/MVN ignore Rn.
constexpr bool dp_no_rn(DpOp op) { return op == DpOp::mov || op == DpOp::mvn; }

enum class ShiftKind : std::uint8_t { lsl = 0, lsr = 1, asr = 2, ror = 3, rrx = 4 };
const char* shift_name(ShiftKind k);

/// The paper's six operation classes for ARM7. Values double as the RCPN
/// TypeId of each class's sub-net, so decode can route tokens directly.
enum class OpClass : std::uint8_t {
  data_proc = 0,
  multiply = 1,
  load_store = 2,
  load_store_multiple = 3,
  branch = 4,
  swi = 5,
  kCount = 6,
};
const char* op_class_name(OpClass c);
constexpr unsigned kNumOpClasses = static_cast<unsigned>(OpClass::kCount);

// -- decoded form ---------------------------------------------------------------

/// Fully decoded instruction: computed once per static instruction and cached
/// (carried by the RCPN instruction token so no stage ever re-decodes).
struct DecodedInstruction {
  std::uint32_t raw = 0;
  std::uint32_t pc = 0;
  OpClass cls = OpClass::data_proc;
  Cond cond = Cond::al;

  // Register operand indices (kNumRegs when absent).
  std::uint8_t rd = kNumRegs;
  std::uint8_t rn = kNumRegs;
  std::uint8_t rm = kNumRegs;
  std::uint8_t rs = kNumRegs;

  // Data processing.
  DpOp dp_op = DpOp::mov;
  bool sets_flags = false;
  bool imm_operand = false;       // shifter operand is an immediate
  std::uint32_t imm = 0;          // rotated immediate value (already expanded)
  bool imm_carry_valid = false;   // rotate != 0 -> shifter carry := imm bit 31
  bool imm_carry = false;
  ShiftKind shift = ShiftKind::lsl;
  std::uint8_t shift_amount = 0;  // when shifting by immediate
  bool shift_by_reg = false;      // shift amount in Rs

  // Multiply: rd = rm * rs (+ rn when accumulate).
  bool accumulate = false;

  // Load/store single.
  bool is_load = false;
  bool is_byte = false;
  bool pre_index = true;
  bool add_offset = true;
  bool writeback = false;
  bool reg_offset = false;
  std::uint32_t offset_imm = 0;

  // Load/store multiple.
  std::uint16_t reg_list = 0;
  bool lsm_before = false;  // increment/decrement before
  bool lsm_up = true;

  // Branch.
  std::int32_t branch_offset = 0;  // already shifted, relative to pc+8
  bool link = false;
  bool branch_via_reg = false;     // data-processing write to pc (mov pc, lr)

  // SWI.
  std::uint32_t swi_imm = 0;

  /// Does this instruction (when it passes its condition) write Rd?
  bool writes_rd() const;
  /// Does it read CPSR beyond the condition check (ADC/SBC/RSC/RRX)?
  bool reads_carry() const;
};

/// Decode `raw` fetched from `pc`. Unrecognised encodings decode to a SWI
/// with imm 0xdead00 so simulators fail loudly rather than silently.
DecodedInstruction decode(std::uint32_t raw, std::uint32_t pc);

// -- pure semantics (shared by ISS, RCPN models and the baseline) ---------------

struct ShifterOut {
  std::uint32_t value = 0;
  bool carry = false;
};

/// Evaluate the shifter operand given the register values it needs.
ShifterOut eval_shifter(const DecodedInstruction& d, std::uint32_t rm_val,
                        std::uint32_t rs_val, bool carry_in);

struct DataProcOut {
  std::uint32_t result = 0;
  bool writes_rd = false;
  std::uint32_t nzcv = 0;   // new flag bits (positioned)
  bool writes_flags = false;
};

/// Execute a data-processing instruction (condition already checked).
DataProcOut exec_dataproc(const DecodedInstruction& d, std::uint32_t rn_val,
                          std::uint32_t rm_val, std::uint32_t rs_val,
                          std::uint32_t cpsr);

struct MulOut {
  std::uint32_t result = 0;
  std::uint32_t nzcv = 0;
  bool writes_flags = false;
};
MulOut exec_mul(const DecodedInstruction& d, std::uint32_t rm_val,
                std::uint32_t rs_val, std::uint32_t rn_val, std::uint32_t cpsr);

/// Multiply timing: ARM7/StrongArm early-terminate on small multipliers.
/// Returns extra execute cycles (0 for an 8-bit multiplier).
std::uint32_t mul_extra_cycles(std::uint32_t rs_val);

struct LsAddress {
  std::uint32_t ea = 0;        // effective address of the access
  std::uint32_t rn_after = 0;  // base register value after the access
  bool rn_writeback = false;
};
LsAddress ls_address(const DecodedInstruction& d, std::uint32_t rn_val,
                     std::uint32_t rm_val, std::uint32_t cpsr);

/// LDM/STM: starting address and whether the base is written back.
struct LsmPlan {
  std::uint32_t start = 0;      // address of the lowest register slot
  std::uint32_t rn_after = 0;
  unsigned count = 0;
};
LsmPlan lsm_plan(const DecodedInstruction& d, std::uint32_t rn_val);

}  // namespace rcpn::arm
