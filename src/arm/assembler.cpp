#include "arm/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <optional>
#include <vector>

#include "arm/encode.hpp"

namespace rcpn::arm {

namespace {

// -- lexical helpers -----------------------------------------------------------

std::string strip(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::string strip_comment(const std::string& line) {
  bool in_str = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"') in_str = !in_str;
    if (in_str) continue;
    if (c == ';' || c == '@') return line.substr(0, i);
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') return line.substr(0, i);
  }
  return line;
}

/// Split on top-level commas ([...] and {...} protected).
std::vector<std::string> split_operands(const std::string& s) {
  std::vector<std::string> out;
  int depth = 0;
  std::string cur;
  for (char c : s) {
    if (c == '[' || c == '{') ++depth;
    if (c == ']' || c == '}') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(strip(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!strip(cur).empty()) out.push_back(strip(cur));
  return out;
}

// -- parsed line ----------------------------------------------------------------

struct ParsedLine {
  int number = 0;
  std::vector<std::string> labels;
  std::string op;                  // lowered mnemonic or directive (with '.')
  std::vector<std::string> args;   // top-level comma-split operands
  std::string raw_args;            // joined operand text (directive payloads)
};

struct Mnemonic {
  enum class Family {
    data_proc,
    mul,
    mla,
    load_store,
    load_store_multiple,
    branch,
    swi,
    push,
    pop,
    nop,
    adr,
  };
  Family family = Family::nop;
  DpOp dp_op = DpOp::mov;
  Cond cond = Cond::al;
  bool sets_flags = false;
  bool is_load = false;
  bool is_byte = false;
  bool link = false;
  bool lsm_before = false;
  bool lsm_up = true;
};

std::optional<Cond> parse_cond(const std::string& s) {
  static const std::pair<const char*, Cond> table[] = {
      {"eq", Cond::eq}, {"ne", Cond::ne}, {"cs", Cond::cs}, {"hs", Cond::cs},
      {"cc", Cond::cc}, {"lo", Cond::cc}, {"mi", Cond::mi}, {"pl", Cond::pl},
      {"vs", Cond::vs}, {"vc", Cond::vc}, {"hi", Cond::hi}, {"ls", Cond::ls},
      {"ge", Cond::ge}, {"lt", Cond::lt}, {"gt", Cond::gt}, {"le", Cond::le},
      {"al", Cond::al}};
  for (const auto& [name, cond] : table)
    if (s == name) return cond;
  return std::nullopt;
}

std::optional<DpOp> parse_dp_base(const std::string& s) {
  static const std::pair<const char*, DpOp> table[] = {
      {"and", DpOp::and_}, {"eor", DpOp::eor}, {"sub", DpOp::sub},
      {"rsb", DpOp::rsb},  {"add", DpOp::add}, {"adc", DpOp::adc},
      {"sbc", DpOp::sbc},  {"rsc", DpOp::rsc}, {"tst", DpOp::tst},
      {"teq", DpOp::teq},  {"cmp", DpOp::cmp}, {"cmn", DpOp::cmn},
      {"orr", DpOp::orr},  {"mov", DpOp::mov}, {"bic", DpOp::bic},
      {"mvn", DpOp::mvn}};
  for (const auto& [name, op] : table)
    if (s == name) return op;
  return std::nullopt;
}

/// Suffix = [cond][extra] where extra is "s" (dp/mul), "b" (ldr/str) or "".
/// ARM order is {cond} before the qualifier (LDREQB), but unconditioned
/// qualifiers are plain suffixes (LDRB); both parse here.
bool parse_suffix(const std::string& suffix, bool allow_s, bool allow_b, Cond* cond,
                  bool* s_flag, bool* b_flag) {
  *cond = Cond::al;
  *s_flag = false;
  *b_flag = false;
  std::string rest = suffix;
  if (rest.size() >= 2) {
    if (auto c = parse_cond(rest.substr(0, 2))) {
      *cond = *c;
      rest = rest.substr(2);
    }
  }
  if (!rest.empty() && allow_s && rest == "s") {
    *s_flag = true;
    rest.clear();
  }
  if (!rest.empty() && allow_b && rest == "b") {
    *b_flag = true;
    rest.clear();
  }
  return rest.empty();
}

/// LDM/STM address-mode suffix; `load` disambiguates the stack aliases.
std::optional<std::pair<bool, bool>> parse_lsm_mode(const std::string& m, bool load) {
  // {before, up}
  if (m == "ia") return {{false, true}};
  if (m == "ib") return {{true, true}};
  if (m == "da") return {{false, false}};
  if (m == "db") return {{true, false}};
  if (m == "fd") return load ? std::optional<std::pair<bool, bool>>{{false, true}}
                             : std::optional<std::pair<bool, bool>>{{true, false}};
  if (m == "ed") return load ? std::optional<std::pair<bool, bool>>{{true, true}}
                             : std::optional<std::pair<bool, bool>>{{false, false}};
  if (m == "fa") return load ? std::optional<std::pair<bool, bool>>{{false, false}}
                             : std::optional<std::pair<bool, bool>>{{true, true}};
  if (m == "ea") return load ? std::optional<std::pair<bool, bool>>{{true, false}}
                             : std::optional<std::pair<bool, bool>>{{false, true}};
  return std::nullopt;
}

std::optional<Mnemonic> parse_mnemonic(const std::string& word) {
  Mnemonic m;
  Cond cond;
  bool s_flag, b_flag;

  // Fixed words first.
  if (word == "nop") {
    m.family = Mnemonic::Family::nop;
    return m;
  }

  // Data processing (longest bases first is unnecessary: all are 3 chars and
  // no dp base is a prefix of another).
  if (word.size() >= 3) {
    if (auto op = parse_dp_base(word.substr(0, 3))) {
      if (parse_suffix(word.substr(3), /*s*/ true, /*b*/ false, &cond, &s_flag,
                       &b_flag)) {
        m.family = Mnemonic::Family::data_proc;
        m.dp_op = *op;
        m.cond = cond;
        m.sets_flags = s_flag || dp_no_result(*op);
        return m;
      }
    }
  }

  // mul / mla.
  if (word.size() >= 3 && (word.substr(0, 3) == "mul" || word.substr(0, 3) == "mla")) {
    if (parse_suffix(word.substr(3), true, false, &cond, &s_flag, &b_flag)) {
      m.family =
          word.substr(0, 3) == "mul" ? Mnemonic::Family::mul : Mnemonic::Family::mla;
      m.cond = cond;
      m.sets_flags = s_flag;
      return m;
    }
  }

  // ldr / str (with optional b).
  if (word.size() >= 3 && (word.substr(0, 3) == "ldr" || word.substr(0, 3) == "str")) {
    std::string suffix = word.substr(3);
    // Accept both ldrb and ldreqb orders.
    if (!suffix.empty() && suffix[0] == 'b' &&
        parse_suffix(suffix.substr(1), false, false, &cond, &s_flag, &b_flag)) {
      m.family = Mnemonic::Family::load_store;
      m.is_load = word[0] == 'l';
      m.is_byte = true;
      m.cond = cond;
      return m;
    }
    if (parse_suffix(suffix, false, true, &cond, &s_flag, &b_flag)) {
      m.family = Mnemonic::Family::load_store;
      m.is_load = word[0] == 'l';
      m.is_byte = b_flag;
      m.cond = cond;
      return m;
    }
  }

  // ldm / stm: base + [cond] + mode, or base + mode + [cond].
  if (word.size() >= 5 && (word.substr(0, 3) == "ldm" || word.substr(0, 3) == "stm")) {
    const bool load = word[0] == 'l';
    std::string suffix = word.substr(3);
    Cond c = Cond::al;
    if (suffix.size() == 4) {
      // condmode or modecond
      if (auto cc = parse_cond(suffix.substr(0, 2))) {
        if (auto mode = parse_lsm_mode(suffix.substr(2), load)) {
          m.family = Mnemonic::Family::load_store_multiple;
          m.is_load = load;
          m.cond = *cc;
          m.lsm_before = mode->first;
          m.lsm_up = mode->second;
          return m;
        }
      }
      if (auto mode = parse_lsm_mode(suffix.substr(0, 2), load)) {
        if (auto cc = parse_cond(suffix.substr(2))) {
          m.family = Mnemonic::Family::load_store_multiple;
          m.is_load = load;
          m.cond = *cc;
          m.lsm_before = mode->first;
          m.lsm_up = mode->second;
          return m;
        }
      }
    } else if (suffix.size() == 2) {
      if (auto mode = parse_lsm_mode(suffix, load)) {
        m.family = Mnemonic::Family::load_store_multiple;
        m.is_load = load;
        m.cond = c;
        m.lsm_before = mode->first;
        m.lsm_up = mode->second;
        return m;
      }
    }
  }

  // push / pop.
  if (word.size() >= 4 && word.substr(0, 4) == "push") {
    if (parse_suffix(word.substr(4), false, false, &cond, &s_flag, &b_flag)) {
      m.family = Mnemonic::Family::push;
      m.cond = cond;
      return m;
    }
  }
  if (word.size() >= 3 && word.substr(0, 3) == "pop") {
    if (parse_suffix(word.substr(3), false, false, &cond, &s_flag, &b_flag)) {
      m.family = Mnemonic::Family::pop;
      m.cond = cond;
      return m;
    }
  }

  // swi / svc.
  if (word.size() >= 3 && (word.substr(0, 3) == "swi" || word.substr(0, 3) == "svc")) {
    if (parse_suffix(word.substr(3), false, false, &cond, &s_flag, &b_flag)) {
      m.family = Mnemonic::Family::swi;
      m.cond = cond;
      return m;
    }
  }

  // adr pseudo.
  if (word.size() >= 3 && word.substr(0, 3) == "adr") {
    if (parse_suffix(word.substr(3), false, false, &cond, &s_flag, &b_flag)) {
      m.family = Mnemonic::Family::adr;
      m.cond = cond;
      return m;
    }
  }

  // Branches last: "b", "bl", each with optional cond ("bls" parses as
  // b + ls because bl + "s" is rejected above by the suffix grammar).
  if (word == "b") {
    m.family = Mnemonic::Family::branch;
    return m;
  }
  if (word == "bl") {
    m.family = Mnemonic::Family::branch;
    m.link = true;
    return m;
  }
  if (word.size() == 3 && word[0] == 'b') {
    if (auto c = parse_cond(word.substr(1))) {
      m.family = Mnemonic::Family::branch;
      m.cond = *c;
      return m;
    }
  }
  if (word.size() == 4 && word.substr(0, 2) == "bl") {
    if (auto c = parse_cond(word.substr(2))) {
      m.family = Mnemonic::Family::branch;
      m.link = true;
      m.cond = *c;
      return m;
    }
  }
  return std::nullopt;
}

// -- the assembler --------------------------------------------------------------

class Assembler {
 public:
  Assembler(const std::string& source, const std::string& name, std::uint32_t origin)
      : name_(name), origin_(origin) {
    parse_lines(source);
  }

  AssemblyResult run() {
    pass(/*emit=*/false);
    bytes_.clear();
    pool_pending_.clear();
    pass(/*emit=*/true);

    AssemblyResult result;
    result.program.name = name_;
    result.program.entry = origin_;
    if (auto it = symbols_.find("_start"); it != symbols_.end())
      result.program.entry = it->second;
    result.program.add_segment(origin_, std::move(bytes_));
    result.symbols = symbols_;
    return result;
  }

 private:
  struct PoolEntry {
    std::string expr;
    std::uint32_t addr = 0;  // assigned when the pool is flushed
    std::vector<std::uint32_t> fixup_sites;  // instruction addresses
  };

  // ---- parsing ----
  void parse_lines(const std::string& source) {
    int number = 0;
    std::size_t pos = 0;
    while (pos <= source.size()) {
      const std::size_t nl = source.find('\n', pos);
      std::string text = source.substr(
          pos, nl == std::string::npos ? std::string::npos : nl - pos);
      pos = nl == std::string::npos ? source.size() + 1 : nl + 1;
      ++number;

      text = strip(strip_comment(text));
      ParsedLine pl;
      pl.number = number;
      // Peel labels.
      for (;;) {
        const std::size_t colon = text.find(':');
        if (colon == std::string::npos) break;
        const std::string head = strip(text.substr(0, colon));
        if (head.empty() || !is_identifier(head)) break;
        pl.labels.push_back(head);
        text = strip(text.substr(colon + 1));
      }
      if (!text.empty()) {
        const std::size_t sp = text.find_first_of(" \t");
        pl.op = lower(text.substr(0, sp));
        pl.raw_args = sp == std::string::npos ? "" : strip(text.substr(sp + 1));
        pl.args = split_operands(pl.raw_args);
      }
      if (!pl.labels.empty() || !pl.op.empty()) lines_.push_back(std::move(pl));
    }
  }

  static bool is_identifier(const std::string& s) {
    if (s.empty()) return false;
    if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_' && s[0] != '.')
      return false;
    return std::all_of(s.begin(), s.end(), [](unsigned char c) {
      return std::isalnum(c) || c == '_' || c == '.';
    });
  }

  // ---- expression evaluation ----
  std::optional<std::int64_t> eval(const std::string& expr_in) const {
    const std::string expr = strip(expr_in);
    if (expr.empty()) return std::nullopt;
    // symbol/number [+|- number/symbol]*
    std::int64_t acc = 0;
    int sign = 1;
    std::size_t i = 0;
    bool first = true;
    while (i < expr.size()) {
      while (i < expr.size() && std::isspace(static_cast<unsigned char>(expr[i]))) ++i;
      if (!first || expr[i] == '+' || expr[i] == '-') {
        if (expr[i] == '+') {
          sign = 1;
          ++i;
        } else if (expr[i] == '-') {
          sign = -1;
          ++i;
        } else if (!first) {
          return std::nullopt;
        }
      }
      while (i < expr.size() && std::isspace(static_cast<unsigned char>(expr[i]))) ++i;
      std::size_t j = i;
      while (j < expr.size() && expr[j] != '+' && expr[j] != '-' &&
             !std::isspace(static_cast<unsigned char>(expr[j])))
        ++j;
      const std::string tok = expr.substr(i, j - i);
      if (tok.empty()) return std::nullopt;
      std::int64_t v;
      if (auto n = parse_number(tok)) {
        v = *n;
      } else if (auto it = symbols_.find(tok); it != symbols_.end()) {
        v = it->second;
      } else {
        return std::nullopt;
      }
      acc += sign * v;
      sign = 1;
      i = j;
      first = false;
    }
    return acc;
  }

  static std::optional<std::int64_t> parse_number(const std::string& tok) {
    if (tok.empty()) return std::nullopt;
    if (tok.size() == 3 && tok.front() == '\'' && tok.back() == '\'')
      return static_cast<std::int64_t>(static_cast<unsigned char>(tok[1]));
    std::size_t i = 0;
    std::int64_t sign = 1;
    if (tok[i] == '-') {
      sign = -1;
      ++i;
    } else if (tok[i] == '+') {
      ++i;
    }
    if (i >= tok.size()) return std::nullopt;
    int base = 10;
    if (tok.size() - i > 2 && tok[i] == '0' && (tok[i + 1] == 'x' || tok[i + 1] == 'X')) {
      base = 16;
      i += 2;
    } else if (tok.size() - i > 2 && tok[i] == '0' &&
               (tok[i + 1] == 'b' || tok[i + 1] == 'B')) {
      base = 2;
      i += 2;
    }
    std::int64_t v = 0;
    for (; i < tok.size(); ++i) {
      const char c = static_cast<char>(std::tolower(static_cast<unsigned char>(tok[i])));
      int digit;
      if (c >= '0' && c <= '9') {
        digit = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        digit = 10 + (c - 'a');
      } else {
        return std::nullopt;
      }
      if (digit >= base) return std::nullopt;
      v = v * base + digit;
    }
    return sign * v;
  }

  std::int64_t eval_or_throw(const std::string& expr, int line) const {
    if (auto v = eval(expr)) return *v;
    throw AsmError(line, "cannot evaluate expression '" + expr + "'");
  }

  // ---- register parsing ----
  static std::optional<unsigned> parse_reg(const std::string& tok_in) {
    const std::string tok = lower(strip(tok_in));
    if (tok == "sp") return 13;
    if (tok == "lr") return 14;
    if (tok == "pc") return 15;
    if (tok == "ip") return 12;
    if (tok == "fp") return 11;
    if (tok == "sl") return 10;
    if (tok.size() >= 2 && tok[0] == 'r') {
      if (auto n = parse_number(tok.substr(1)); n && *n >= 0 && *n <= 15)
        return static_cast<unsigned>(*n);
    }
    return std::nullopt;
  }

  unsigned reg_or_throw(const std::string& tok, int line) const {
    if (auto r = parse_reg(tok)) return *r;
    throw AsmError(line, "expected register, got '" + tok + "'");
  }

  std::uint16_t parse_reg_list(const std::string& tok, int line) const {
    const std::string t = strip(tok);
    if (t.size() < 2 || t.front() != '{' || t.back() != '}')
      throw AsmError(line, "expected register list {..}, got '" + tok + "'");
    std::uint16_t mask = 0;
    for (const std::string& part : split_operands(t.substr(1, t.size() - 2))) {
      const std::size_t dash = part.find('-');
      if (dash != std::string::npos) {
        const unsigned lo = reg_or_throw(part.substr(0, dash), line);
        const unsigned hi = reg_or_throw(part.substr(dash + 1), line);
        if (lo > hi) throw AsmError(line, "bad register range '" + part + "'");
        for (unsigned r = lo; r <= hi; ++r) mask |= static_cast<std::uint16_t>(1u << r);
      } else {
        mask |= static_cast<std::uint16_t>(1u << reg_or_throw(part, line));
      }
    }
    if (mask == 0) throw AsmError(line, "empty register list");
    return mask;
  }

  // ---- emission ----
  void emit_word(std::uint32_t w) {
    bytes_.push_back(static_cast<std::uint8_t>(w));
    bytes_.push_back(static_cast<std::uint8_t>(w >> 8));
    bytes_.push_back(static_cast<std::uint8_t>(w >> 16));
    bytes_.push_back(static_cast<std::uint8_t>(w >> 24));
  }

  void patch_word(std::uint32_t addr, std::uint32_t w) {
    const std::size_t off = addr - origin_;
    bytes_[off] = static_cast<std::uint8_t>(w);
    bytes_[off + 1] = static_cast<std::uint8_t>(w >> 8);
    bytes_[off + 2] = static_cast<std::uint8_t>(w >> 16);
    bytes_[off + 3] = static_cast<std::uint8_t>(w >> 24);
  }

  void advance(std::uint32_t n, bool emit, std::uint8_t fill = 0) {
    lc_ += n;
    if (emit) bytes_.insert(bytes_.end(), n, fill);
  }

  // ---- literal pool ----
  /// Register a `ldr rX, =expr` use at instruction address `site`.
  void pool_add(const std::string& expr, std::uint32_t site) {
    for (PoolEntry& e : pool_pending_)
      if (e.expr == expr) {
        e.fixup_sites.push_back(site);
        return;
      }
    PoolEntry e;
    e.expr = expr;
    e.fixup_sites.push_back(site);
    pool_pending_.push_back(std::move(e));
  }

  void flush_pool(bool emit, int line) {
    for (PoolEntry& e : pool_pending_) {
      e.addr = lc_;
      if (emit) {
        const std::int64_t v = eval_or_throw(e.expr, line);
        emit_word(static_cast<std::uint32_t>(v));
        for (std::uint32_t site : e.fixup_sites) {
          const std::int32_t off =
              static_cast<std::int32_t>(e.addr) - static_cast<std::int32_t>(site + 8);
          if (off < -4095 || off > 4095)
            throw AsmError(line, "literal pool out of range for '" + e.expr + "'");
          // Rebuild the ldr with the now-known offset; rd was stashed in the
          // placeholder instruction's Rd field.
          const std::uint32_t placeholder = read_word(site);
          const unsigned rd = (placeholder >> 12) & 0xf;
          const Cond cond = static_cast<Cond>(placeholder >> 28);
          patch_word(site, enc::ldr_str_imm(cond, true, false, rd, kRegPc, off,
                                            /*pre=*/true, /*wb=*/false));
        }
      } else {
        lc_ += 4;
        continue;
      }
      lc_ += 4;
    }
    pool_pending_.clear();
  }

  std::uint32_t read_word(std::uint32_t addr) const {
    const std::size_t off = addr - origin_;
    return static_cast<std::uint32_t>(bytes_[off]) |
           (static_cast<std::uint32_t>(bytes_[off + 1]) << 8) |
           (static_cast<std::uint32_t>(bytes_[off + 2]) << 16) |
           (static_cast<std::uint32_t>(bytes_[off + 3]) << 24);
  }

  // ---- shifter operand parsing (dp instructions) ----
  struct ShifterSpec {
    bool is_imm = false;
    std::uint32_t imm12 = 0;   // encoded rotated immediate
    unsigned rm = 0;
    ShiftKind shift = ShiftKind::lsl;
    unsigned amount = 0;
    bool by_reg = false;
    unsigned rs = 0;
  };

  /// Parse trailing operands `rm {, shift #n | shift rs | rrx}` or `#imm`.
  ShifterSpec parse_shifter(const std::vector<std::string>& ops, std::size_t first,
                            int line, bool emit) const {
    ShifterSpec sp;
    if (ops.size() <= first) throw AsmError(line, "missing operand");
    const std::string& o = ops[first];
    if (o.size() >= 1 && o[0] == '#') {
      const std::int64_t v =
          emit ? eval_or_throw(o.substr(1), line) : eval(o.substr(1)).value_or(0);
      const auto enc12 = enc::encode_imm(static_cast<std::uint32_t>(v));
      if (!enc12) {
        if (emit)
          throw AsmError(line, "immediate " + o + " not encodable; use ldr =");
        sp.is_imm = true;
        return sp;
      }
      sp.is_imm = true;
      sp.imm12 = *enc12;
      return sp;
    }
    sp.rm = reg_or_throw(o, line);
    if (ops.size() == first + 1) return sp;
    if (ops.size() > first + 2) throw AsmError(line, "too many operands");
    // shift spec: "lsl #3" | "lsl r4" | "rrx"
    const std::string spec = lower(strip(ops[first + 1]));
    if (spec == "rrx") {
      sp.shift = ShiftKind::rrx;
      return sp;
    }
    const std::size_t sep = spec.find_first_of(" \t");
    if (sep == std::string::npos) throw AsmError(line, "bad shift '" + spec + "'");
    const std::string kind = strip(spec.substr(0, sep));
    const std::string arg = strip(spec.substr(sep));
    static const std::pair<const char*, ShiftKind> kinds[] = {{"lsl", ShiftKind::lsl},
                                                              {"lsr", ShiftKind::lsr},
                                                              {"asr", ShiftKind::asr},
                                                              {"ror", ShiftKind::ror}};
    bool found = false;
    for (const auto& [n, k] : kinds)
      if (kind == n) {
        sp.shift = k;
        found = true;
      }
    if (!found) throw AsmError(line, "unknown shift '" + kind + "'");
    if (!arg.empty() && arg[0] == '#') {
      const std::int64_t amount = eval_or_throw(arg.substr(1), line);
      if (amount < 0 || amount > 32) throw AsmError(line, "shift amount out of range");
      // LSR/ASR #32 encode as amount 0.
      sp.amount = static_cast<unsigned>(amount) & 31u;
      if (amount == 32 && (sp.shift == ShiftKind::lsr || sp.shift == ShiftKind::asr))
        sp.amount = 0;
    } else {
      sp.by_reg = true;
      sp.rs = reg_or_throw(arg, line);
    }
    return sp;
  }

  std::uint32_t encode_dp(const Mnemonic& m, const ShifterSpec& sp, unsigned rd,
                          unsigned rn) const {
    if (sp.is_imm) return enc::dataproc_imm(m.cond, m.dp_op, m.sets_flags, rd, rn, sp.imm12);
    if (sp.by_reg)
      return enc::dataproc_regshift(m.cond, m.dp_op, m.sets_flags, rd, rn, sp.rm,
                                    sp.shift, sp.rs);
    return enc::dataproc_reg(m.cond, m.dp_op, m.sets_flags, rd, rn, sp.rm, sp.shift,
                             sp.amount);
  }

  // ---- addressing mode parsing (ldr/str) ----
  std::uint32_t encode_load_store(const Mnemonic& m, const ParsedLine& pl, bool emit) {
    const int line = pl.number;
    if (pl.args.size() < 2) throw AsmError(line, "ldr/str needs 2 operands");
    const unsigned rd = reg_or_throw(pl.args[0], line);

    // ldr rX, =expr  — literal pool pseudo. The mov/mvn shortcut decision is
    // taken in pass 1 and recorded, because in pass 2 forward labels become
    // evaluable and a different choice would shift every following address.
    const std::string second = strip(pl.args[1]);
    if (second.size() >= 1 && second[0] == '=') {
      if (!m.is_load || m.is_byte) throw AsmError(line, "'=' only valid with ldr");
      if (!emit) {
        bool use_mov = false;
        if (auto v = eval(second.substr(1))) {
          use_mov = enc::encode_imm(static_cast<std::uint32_t>(*v)).has_value() ||
                    enc::encode_imm(~static_cast<std::uint32_t>(*v)).has_value();
        }
        ldr_eq_uses_mov_[lc_] = use_mov;
        if (!use_mov) pool_add(second.substr(1), lc_);
        return enc::ldr_str_imm(m.cond, true, false, rd, kRegPc, 0, true, false);
      }
      const auto decision = ldr_eq_uses_mov_.find(lc_);
      if (decision != ldr_eq_uses_mov_.end() && decision->second) {
        const auto v = static_cast<std::uint32_t>(eval_or_throw(second.substr(1), line));
        if (auto imm = enc::encode_imm(v))
          return enc::dataproc_imm(m.cond, DpOp::mov, false, rd, 0, *imm);
        if (auto imm = enc::encode_imm(~v))
          return enc::dataproc_imm(m.cond, DpOp::mvn, false, rd, 0, *imm);
        throw AsmError(line, "internal: ldr= shortcut no longer encodable");
      }
      pool_add(second.substr(1), lc_);
      // Placeholder carrying cond+rd; patched when the pool is flushed.
      return enc::ldr_str_imm(m.cond, true, false, rd, kRegPc, 0, true, false);
    }

    if (second.front() != '[')
      throw AsmError(line, "expected address operand, got '" + second + "'");

    // Post-indexed: "[rn]" followed by an extra operand.
    const bool post = second.back() == ']' && pl.args.size() > 2;
    if (post) {
      if (pl.args.size() > 3)
        throw AsmError(line, "scaled post-indexed addressing not supported");
      const std::string inner = strip(second.substr(1, second.size() - 2));
      const unsigned rn = reg_or_throw(inner, line);
      const std::string& off = pl.args[2];
      if (off[0] == '#') {
        const std::int64_t v =
            emit ? eval_or_throw(off.substr(1), line) : eval(off.substr(1)).value_or(0);
        return enc::ldr_str_imm(m.cond, m.is_load, m.is_byte, rd, rn,
                                static_cast<std::int32_t>(v), /*pre=*/false,
                                /*wb=*/false);
      }
      bool add = true;
      std::string rtok = strip(off);
      if (!rtok.empty() && rtok[0] == '-') {
        add = false;
        rtok = strip(rtok.substr(1));
      }
      return enc::ldr_str_reg(m.cond, m.is_load, m.is_byte, rd, rn,
                              reg_or_throw(rtok, line), ShiftKind::lsl, 0, add,
                              /*pre=*/false, /*wb=*/false);
    }

    // Pre-indexed / offset: "[ ... ]" with optional "!".
    std::string addr = second;
    bool writeback = false;
    if (addr.back() == '!') {
      writeback = true;
      addr = strip(addr.substr(0, addr.size() - 1));
    }
    if (addr.front() != '[' || addr.back() != ']')
      throw AsmError(line, "malformed address '" + second + "'");
    const std::vector<std::string> parts =
        split_operands(addr.substr(1, addr.size() - 2));
    if (parts.empty()) throw AsmError(line, "empty address");
    const unsigned rn = reg_or_throw(parts[0], line);
    if (parts.size() == 1)
      return enc::ldr_str_imm(m.cond, m.is_load, m.is_byte, rd, rn, 0, true, writeback);
    if (parts[1][0] == '#') {
      const std::int64_t v = emit ? eval_or_throw(parts[1].substr(1), line)
                                  : eval(parts[1].substr(1)).value_or(0);
      if (v < -4095 || v > 4095) throw AsmError(line, "offset out of range");
      return enc::ldr_str_imm(m.cond, m.is_load, m.is_byte, rd, rn,
                              static_cast<std::int32_t>(v), true, writeback);
    }
    bool add = true;
    std::string rtok = strip(parts[1]);
    if (rtok[0] == '-') {
      add = false;
      rtok = strip(rtok.substr(1));
    }
    const unsigned rm = reg_or_throw(rtok, line);
    ShiftKind shift = ShiftKind::lsl;
    unsigned amount = 0;
    if (parts.size() >= 3) {
      const std::string spec = lower(strip(parts[2]));
      const std::size_t sep = spec.find_first_of(" \t");
      if (sep == std::string::npos) throw AsmError(line, "bad shift in address");
      static const std::pair<const char*, ShiftKind> kinds[] = {
          {"lsl", ShiftKind::lsl},
          {"lsr", ShiftKind::lsr},
          {"asr", ShiftKind::asr},
          {"ror", ShiftKind::ror}};
      bool found = false;
      for (const auto& [n, k] : kinds)
        if (strip(spec.substr(0, sep)) == n) {
          shift = k;
          found = true;
        }
      if (!found) throw AsmError(line, "unknown shift in address");
      const std::string arg = strip(spec.substr(sep));
      if (arg.empty() || arg[0] != '#')
        throw AsmError(line, "address shift must be immediate");
      amount = static_cast<unsigned>(eval_or_throw(arg.substr(1), line)) & 31u;
    }
    return enc::ldr_str_reg(m.cond, m.is_load, m.is_byte, rd, rn, rm, shift, amount,
                            add, true, writeback);
  }

  // ---- one full pass ----
  void pass(bool emit) {
    lc_ = origin_;
    for (const ParsedLine& pl : lines_) {
      for (const std::string& label : pl.labels) {
        if (!emit) {
          if (symbols_.count(label))
            throw AsmError(pl.number, "duplicate label '" + label + "'");
          symbols_[label] = lc_;
        }
      }
      if (pl.op.empty()) continue;
      if (pl.op[0] == '.') {
        directive(pl, emit);
        continue;
      }
      instruction(pl, emit);
    }
    flush_pool(emit, lines_.empty() ? 0 : lines_.back().number);
  }

  void directive(const ParsedLine& pl, bool emit) {
    const int line = pl.number;
    if (pl.op == ".org") {
      const std::int64_t target = eval_or_throw(pl.raw_args, line);
      if (static_cast<std::uint32_t>(target) < lc_)
        throw AsmError(line, ".org goes backwards");
      advance(static_cast<std::uint32_t>(target) - lc_, emit);
    } else if (pl.op == ".word") {
      for (const std::string& a : pl.args) {
        if (emit) {
          emit_word(static_cast<std::uint32_t>(eval_or_throw(a, line)));
          lc_ += 4;
        } else {
          lc_ += 4;
        }
      }
    } else if (pl.op == ".byte") {
      for (const std::string& a : pl.args) {
        if (emit) {
          bytes_.push_back(
              static_cast<std::uint8_t>(eval_or_throw(a, line) & 0xff));
        }
        lc_ += 1;
      }
    } else if (pl.op == ".space") {
      const std::int64_t n = eval_or_throw(pl.args.at(0), line);
      const std::uint8_t fill =
          pl.args.size() > 1
              ? static_cast<std::uint8_t>(eval_or_throw(pl.args[1], line))
              : 0;
      advance(static_cast<std::uint32_t>(n), emit, fill);
    } else if (pl.op == ".align") {
      const std::uint32_t align =
          pl.args.empty() ? 4
                          : (1u << static_cast<unsigned>(eval_or_throw(pl.args[0], line)));
      const std::uint32_t pad = (align - (lc_ % align)) % align;
      advance(pad, emit);
    } else if (pl.op == ".ascii" || pl.op == ".asciz") {
      const std::string s = parse_string(pl.raw_args, line);
      for (char c : s) {
        if (emit) bytes_.push_back(static_cast<std::uint8_t>(c));
        lc_ += 1;
      }
      if (pl.op == ".asciz") {
        if (emit) bytes_.push_back(0);
        lc_ += 1;
      }
    } else if (pl.op == ".equ" || pl.op == ".set") {
      if (pl.args.size() != 2) throw AsmError(line, ".equ needs name, value");
      if (!emit)
        symbols_[strip(pl.args[0])] =
            static_cast<std::uint32_t>(eval_or_throw(pl.args[1], line));
    } else if (pl.op == ".ltorg") {
      flush_pool(emit, line);
    } else if (pl.op == ".global" || pl.op == ".globl" || pl.op == ".text" ||
               pl.op == ".data") {
      // Accepted for familiarity; a flat image needs no sections.
    } else {
      throw AsmError(line, "unknown directive '" + pl.op + "'");
    }
  }

  static std::string parse_string(const std::string& raw, int line) {
    const std::string s = strip(raw);
    if (s.size() < 2 || s.front() != '"' || s.back() != '"')
      throw AsmError(line, "expected quoted string");
    std::string out;
    for (std::size_t i = 1; i + 1 < s.size(); ++i) {
      char c = s[i];
      if (c == '\\' && i + 2 < s.size()) {
        ++i;
        switch (s[i]) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '0': c = '\0'; break;
          case '\\': c = '\\'; break;
          case '"': c = '"'; break;
          default: c = s[i]; break;
        }
      }
      out.push_back(c);
    }
    return out;
  }

  void instruction(const ParsedLine& pl, bool emit) {
    const int line = pl.number;
    const auto mn = parse_mnemonic(pl.op);
    if (!mn) throw AsmError(line, "unknown mnemonic '" + pl.op + "'");
    const Mnemonic& m = *mn;
    std::uint32_t word = 0;

    switch (m.family) {
      case Mnemonic::Family::nop:
        word = enc::dataproc_reg(Cond::al, DpOp::mov, false, 0, 0, 0, ShiftKind::lsl, 0);
        break;
      case Mnemonic::Family::data_proc: {
        unsigned rd = 0, rn = 0;
        std::size_t shifter_at;
        if (m.dp_op == DpOp::mov || m.dp_op == DpOp::mvn) {
          rd = reg_or_throw(pl.args.at(0), line);
          shifter_at = 1;
        } else if (dp_no_result(m.dp_op)) {
          rn = reg_or_throw(pl.args.at(0), line);
          shifter_at = 1;
        } else {
          rd = reg_or_throw(pl.args.at(0), line);
          rn = reg_or_throw(pl.args.at(1), line);
          shifter_at = 2;
        }
        ShifterSpec sp = parse_shifter(pl.args, shifter_at, line, emit);
        word = encode_dp(m, sp, rd, rn);
        break;
      }
      case Mnemonic::Family::mul: {
        const unsigned rd = reg_or_throw(pl.args.at(0), line);
        const unsigned rm = reg_or_throw(pl.args.at(1), line);
        const unsigned rs = reg_or_throw(pl.args.at(2), line);
        word = enc::mul(m.cond, m.sets_flags, rd, rm, rs);
        break;
      }
      case Mnemonic::Family::mla: {
        const unsigned rd = reg_or_throw(pl.args.at(0), line);
        const unsigned rm = reg_or_throw(pl.args.at(1), line);
        const unsigned rs = reg_or_throw(pl.args.at(2), line);
        const unsigned rn = reg_or_throw(pl.args.at(3), line);
        word = enc::mla(m.cond, m.sets_flags, rd, rm, rs, rn);
        break;
      }
      case Mnemonic::Family::load_store:
        word = encode_load_store(m, pl, emit);
        break;
      case Mnemonic::Family::load_store_multiple: {
        std::string base = strip(pl.args.at(0));
        bool wb = false;
        if (!base.empty() && base.back() == '!') {
          wb = true;
          base = strip(base.substr(0, base.size() - 1));
        }
        const unsigned rn = reg_or_throw(base, line);
        const std::uint16_t list = parse_reg_list(pl.args.at(1), line);
        word = enc::ldm_stm(m.cond, m.is_load, m.lsm_before, m.lsm_up, wb, rn, list);
        break;
      }
      case Mnemonic::Family::push: {
        const std::uint16_t list = parse_reg_list(pl.args.at(0), line);
        word = enc::ldm_stm(m.cond, false, /*before=*/true, /*up=*/false, true,
                            kRegSp, list);
        break;
      }
      case Mnemonic::Family::pop: {
        const std::uint16_t list = parse_reg_list(pl.args.at(0), line);
        word = enc::ldm_stm(m.cond, true, /*before=*/false, /*up=*/true, true,
                            kRegSp, list);
        break;
      }
      case Mnemonic::Family::branch: {
        std::int64_t target = 0;
        if (emit) target = eval_or_throw(pl.args.at(0), line);
        const std::int32_t off =
            static_cast<std::int32_t>(target) - static_cast<std::int32_t>(lc_ + 8);
        word = enc::branch(m.cond, m.link, emit ? off : 0);
        break;
      }
      case Mnemonic::Family::swi: {
        std::string a = pl.args.empty() ? "0" : strip(pl.args[0]);
        if (!a.empty() && a[0] == '#') a = a.substr(1);
        word = enc::swi(m.cond, static_cast<std::uint32_t>(eval_or_throw(a, line)));
        break;
      }
      case Mnemonic::Family::adr: {
        const unsigned rd = reg_or_throw(pl.args.at(0), line);
        std::int64_t target = emit ? eval_or_throw(pl.args.at(1), line) : lc_;
        const std::int32_t off =
            static_cast<std::int32_t>(target) - static_cast<std::int32_t>(lc_ + 8);
        const auto enc_pos = enc::encode_imm(static_cast<std::uint32_t>(off));
        const auto enc_neg = enc::encode_imm(static_cast<std::uint32_t>(-off));
        if (emit && !enc_pos && !enc_neg)
          throw AsmError(line, "adr target out of range");
        if (off >= 0)
          word = enc::dataproc_imm(m.cond, DpOp::add, false, rd, kRegPc,
                                   enc_pos.value_or(0));
        else
          word = enc::dataproc_imm(m.cond, DpOp::sub, false, rd, kRegPc,
                                   enc_neg.value_or(0));
        break;
      }
    }

    if (emit) emit_word(word);
    lc_ += 4;
  }

  std::string name_;
  std::uint32_t origin_;
  std::uint32_t lc_ = 0;
  std::vector<ParsedLine> lines_;
  std::map<std::string, std::uint32_t> symbols_;
  std::vector<std::uint8_t> bytes_;
  std::vector<PoolEntry> pool_pending_;
  std::map<std::uint32_t, bool> ldr_eq_uses_mov_;  // keyed by instruction address
};

}  // namespace

AssemblyResult assemble(const std::string& source, const std::string& name,
                        std::uint32_t origin) {
  Assembler as(source, name, origin);
  return as.run();
}

}  // namespace rcpn::arm
