// Instruction encoders: the inverse of decode(), used by the assembler and
// by round-trip tests (encode -> decode -> re-encode must be the identity).
#pragma once

#include <cstdint>
#include <optional>

#include "arm/arm_isa.hpp"

namespace rcpn::arm::enc {

/// Encode a 32-bit value as an ARM rotated immediate (imm8 ror 2*rot4);
/// std::nullopt if not representable.
std::optional<std::uint32_t> encode_imm(std::uint32_t value);

std::uint32_t dataproc_imm(Cond cond, DpOp op, bool s, unsigned rd, unsigned rn,
                           std::uint32_t imm12);
std::uint32_t dataproc_reg(Cond cond, DpOp op, bool s, unsigned rd, unsigned rn,
                           unsigned rm, ShiftKind shift, unsigned amount);
std::uint32_t dataproc_regshift(Cond cond, DpOp op, bool s, unsigned rd, unsigned rn,
                                unsigned rm, ShiftKind shift, unsigned rs);
std::uint32_t mul(Cond cond, bool s, unsigned rd, unsigned rm, unsigned rs);
std::uint32_t mla(Cond cond, bool s, unsigned rd, unsigned rm, unsigned rs,
                  unsigned rn);
std::uint32_t ldr_str_imm(Cond cond, bool load, bool byte, unsigned rd, unsigned rn,
                          std::int32_t offset, bool pre, bool writeback);
std::uint32_t ldr_str_reg(Cond cond, bool load, bool byte, unsigned rd, unsigned rn,
                          unsigned rm, ShiftKind shift, unsigned amount, bool add,
                          bool pre, bool writeback);
std::uint32_t ldm_stm(Cond cond, bool load, bool before, bool up, bool writeback,
                      unsigned rn, std::uint16_t reg_list);
/// `offset` is relative to pc+8, in bytes, and must be word-aligned.
std::uint32_t branch(Cond cond, bool link, std::int32_t offset);
std::uint32_t swi(Cond cond, std::uint32_t imm24);

}  // namespace rcpn::arm::enc
