#include "arm/disassembler.hpp"

#include <cstdio>

namespace rcpn::arm {

namespace {

std::string reg_name(unsigned r) {
  switch (r) {
    case 13: return "sp";
    case 14: return "lr";
    case 15: return "pc";
    default: return "r" + std::to_string(r);
  }
}

std::string imm_str(std::uint32_t v) {
  char buf[16];
  if (v < 16)
    std::snprintf(buf, sizeof(buf), "#%u", v);
  else
    std::snprintf(buf, sizeof(buf), "#0x%x", v);
  return buf;
}

std::string shifter_str(const DecodedInstruction& d) {
  if (d.imm_operand) return imm_str(d.imm);
  std::string s = reg_name(d.rm);
  if (d.shift_by_reg) {
    s += ", ";
    s += shift_name(d.shift);
    s += " " + reg_name(d.rs);
  } else if (d.shift == ShiftKind::rrx) {
    s += ", rrx";
  } else if (d.shift_amount != 0 ||
             (d.shift != ShiftKind::lsl && d.shift_amount == 0)) {
    const unsigned amount =
        (d.shift_amount == 0 &&
         (d.shift == ShiftKind::lsr || d.shift == ShiftKind::asr))
            ? 32
            : d.shift_amount;
    s += ", ";
    s += shift_name(d.shift);
    s += " #" + std::to_string(amount);
  }
  return s;
}

std::string reg_list_str(std::uint16_t mask) {
  std::string s = "{";
  bool first = true;
  for (unsigned r = 0; r < 16; ++r) {
    if (!(mask & (1u << r))) continue;
    // Collapse runs r..r+k.
    unsigned hi = r;
    while (hi + 1 < 16 && (mask & (1u << (hi + 1)))) ++hi;
    if (!first) s += ", ";
    first = false;
    s += reg_name(r);
    if (hi > r) {
      s += "-" + reg_name(hi);
      r = hi;
    }
  }
  return s + "}";
}

}  // namespace

std::string disassemble(const DecodedInstruction& d) {
  const std::string cond = cond_name(d.cond);
  switch (d.cls) {
    case OpClass::data_proc: {
      std::string s = dp_op_name(d.dp_op);
      s += cond;
      if (d.sets_flags && !dp_no_result(d.dp_op)) s += "s";
      s += " ";
      if (dp_no_result(d.dp_op)) {
        s += reg_name(d.rn) + ", " + shifter_str(d);
      } else if (dp_no_rn(d.dp_op)) {
        s += reg_name(d.rd) + ", " + shifter_str(d);
      } else {
        s += reg_name(d.rd) + ", " + reg_name(d.rn) + ", " + shifter_str(d);
      }
      return s;
    }
    case OpClass::multiply: {
      std::string s = d.accumulate ? "mla" : "mul";
      s += cond;
      if (d.sets_flags) s += "s";
      s += " " + reg_name(d.rd) + ", " + reg_name(d.rm) + ", " + reg_name(d.rs);
      if (d.accumulate) s += ", " + reg_name(d.rn);
      return s;
    }
    case OpClass::load_store: {
      std::string s = d.is_load ? "ldr" : "str";
      s += cond;
      if (d.is_byte) s += "b";
      s += " " + reg_name(d.rd) + ", [" + reg_name(d.rn);
      std::string off;
      if (d.reg_offset) {
        off = std::string(d.add_offset ? "" : "-") + reg_name(d.rm);
        if (d.shift_amount != 0)
          off += std::string(", ") + shift_name(d.shift) + " #" +
                 std::to_string(d.shift_amount);
      } else if (d.offset_imm != 0) {
        off = std::string("#") + (d.add_offset ? "" : "-") +
              std::to_string(d.offset_imm);
      }
      if (d.pre_index) {
        if (!off.empty()) s += ", " + off;
        s += "]";
        if (d.writeback) s += "!";
      } else {
        s += "]";
        if (!off.empty()) s += ", " + off;
      }
      return s;
    }
    case OpClass::load_store_multiple: {
      std::string s = d.is_load ? "ldm" : "stm";
      s += cond;
      s += d.lsm_before ? (d.lsm_up ? "ib" : "db") : (d.lsm_up ? "ia" : "da");
      s += " " + reg_name(d.rn);
      if (d.writeback) s += "!";
      s += ", " + reg_list_str(d.reg_list);
      return s;
    }
    case OpClass::branch: {
      if (d.branch_via_reg) {
        std::string s = dp_op_name(d.dp_op);
        s += cond;
        return s + " pc, " + shifter_str(d);
      }
      std::string s = d.link ? "bl" : "b";
      s += cond;
      char buf[16];
      std::snprintf(buf, sizeof(buf), "0x%x",
                    d.pc + 8 + static_cast<std::uint32_t>(d.branch_offset));
      return s + " " + buf;
    }
    case OpClass::swi: {
      std::string s = "swi";
      s += cond;
      return s + " " + std::to_string(d.swi_imm);
    }
    default:
      return "<unknown>";
  }
}

std::string disassemble(std::uint32_t raw, std::uint32_t pc) {
  return disassemble(decode(raw, pc));
}

}  // namespace rcpn::arm
