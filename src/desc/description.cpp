#include "desc/description.hpp"

#include <charconv>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "core/options_signature.hpp"
#include "desc/delegate_registry.hpp"

namespace rcpn::desc {

using model::ModelError;

namespace {

[[noreturn]] void bad(std::size_t line, const std::string& what) {
  throw ModelError("description line " + std::to_string(line) + ": " + what);
}

/// A serializable identifier: non-empty, no whitespace or '#', and not
/// claiming the '@'-reserved namespace ("@end" is the virtual end place).
void check_name(const std::string& name, const char* kind) {
  bool ok = !name.empty() && name[0] != '@';
  for (char c : name)
    ok = ok && c != ' ' && c != '\t' && c != '\n' && c != '\r' && c != '#';
  if (!ok)
    throw ModelError(std::string("description: ") + kind + " name '" + name +
                     "' is not serializable (empty, leading '@', whitespace or '#')");
}

std::uint64_t parse_u64(std::string_view token, std::size_t line, const char* what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(token.begin(), token.end(), value);
  if (ec != std::errc{} || ptr != token.end())
    bad(line, std::string(what) + " '" + std::string(token) + "' is not a number");
  return value;
}

std::vector<std::string_view> split_tokens(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < s.size() && s[j] != ' ' && s[j] != '\t') ++j;
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

/// "key=value" attribute, or empty key when the token has no '='.
std::pair<std::string_view, std::string_view> split_attr(std::string_view token) {
  const std::size_t eq = token.find('=');
  if (eq == std::string_view::npos) return {{}, token};
  return {token.substr(0, eq), token.substr(eq + 1)};
}

/// Delegate arity keyword: the call shape emitted and bound for the symbol.
const char* arity_word(bool takes_machine) { return takes_machine ? "machine" : "ctx"; }

void append_delegate(std::string& out, const char* kind, const DescDelegate& d) {
  if (d.symbol.empty()) return;
  out += "  ";
  out += kind;
  out += " ";
  out += d.symbol;
  out += " ";
  out += arity_word(d.takes_machine);
  out += "\n";
}

}  // namespace

std::string to_text(const Description& d) {
  check_name(d.model, "model");
  std::string out;
  out += d.version;
  out += "\n";
  out += "model " + d.model + "\n";
  if (!d.machine_type.empty()) out += "machine " + d.machine_type + "\n";
  for (const std::string& h : d.includes) out += "include " + h + "\n";
  if (!d.options.empty()) out += "options " + d.options + "\n";
  out += "deadlock_limit " + std::to_string(d.deadlock_limit) + "\n";

  out += "\n";
  for (const DescStage& s : d.stages) {
    check_name(s.name, "stage");
    out += "stage " + s.name + " capacity=" + std::to_string(s.capacity);
    if (s.forced_two_list >= 0)
      out += std::string(" two_list=") + (s.forced_two_list ? "1" : "0");
    out += "\n";
  }
  for (const DescPlace& p : d.places) {
    check_name(p.name, "place");
    if (p.end) {
      out += "end_place " + p.name + "\n";
    } else {
      check_name(p.stage, "stage");
      out += "place " + p.name + " stage=" + p.stage;
      if (p.delay != 1) out += " delay=" + std::to_string(p.delay);
      out += "\n";
    }
  }
  for (const std::string& t : d.types) {
    check_name(t, "type");
    out += "type " + t + "\n";
  }

  for (const DescTransition& t : d.transitions) {
    check_name(t.name, "transition");
    out += "\n";
    if (t.independent) {
      out += "independent " + t.name + "\n";
    } else {
      check_name(t.type, "type");
      out += "transition " + t.name + " type=" + t.type + "\n";
    }
    const auto arc_place = [](const std::string& name) {
      if (name != kEndPlaceName) check_name(name, "place");
      return name;
    };
    for (const DescArcIn& a : t.in) {
      if (a.reservation) {
        out += "  consume " + arc_place(a.place) + "\n";
      } else {
        out += "  from " + arc_place(a.place);
        if (a.priority != 0) out += " priority=" + std::to_string(a.priority);
        out += "\n";
      }
    }
    for (const DescArcOut& a : t.out)
      out += (a.reservation ? "  emit " : "  to ") + arc_place(a.place) + "\n";
    for (const std::string& p : t.state_refs)
      out += "  reads_state " + arc_place(p) + "\n";
    if (t.delay != 0) out += "  delay " + std::to_string(t.delay) + "\n";
    if (t.max_fires != 1) out += "  max_fires " + std::to_string(t.max_fires) + "\n";
    append_delegate(out, "guard", t.guard);
    append_delegate(out, "action", t.action);
    out += "end\n";
  }
  return out;
}

Description parse(std::string_view text) {
  Description d;
  d.version.clear();
  d.deadlock_limit = core::EngineOptions{}.deadlock_limit;

  DescTransition* open = nullptr;  // transition block being filled
  bool saw_version = false;
  std::size_t line_no = 0;

  std::string_view rest = text;
  while (!rest.empty() || line_no == 0) {
    if (rest.empty()) break;
    const std::size_t nl = rest.find('\n');
    std::string_view line = nl == std::string_view::npos ? rest : rest.substr(0, nl);
    rest = nl == std::string_view::npos ? std::string_view{} : rest.substr(nl + 1);
    ++line_no;
    if (const std::size_t hash = line.find('#'); hash != std::string_view::npos)
      line = line.substr(0, hash);
    const std::vector<std::string_view> tok = split_tokens(line);
    if (tok.empty()) continue;

    if (!saw_version) {
      // The whole first non-blank line is the version tag.
      if (tok.size() != 1 || tok[0] != kDescVersion)
        bad(line_no, "unsupported description version '" +
                         std::string(tok.size() == 1 ? tok[0] : line) +
                         "' (this library reads " + std::string(kDescVersion) + ")");
      d.version = std::string(tok[0]);
      saw_version = true;
      continue;
    }

    const std::string_view kw = tok[0];
    const auto need = [&](std::size_t n, const char* usage) {
      if (tok.size() < n) bad(line_no, std::string("expected: ") + usage);
    };

    if (open != nullptr) {
      if (kw == "end") {
        open = nullptr;
      } else if (kw == "from") {
        need(2, "from <place> [priority=N]");
        DescArcIn a;
        a.place = std::string(tok[1]);
        for (std::size_t i = 2; i < tok.size(); ++i) {
          const auto [k, v] = split_attr(tok[i]);
          if (k == "priority")
            a.priority = static_cast<std::uint8_t>(parse_u64(v, line_no, "priority"));
          else
            bad(line_no, "unknown from-arc attribute '" + std::string(tok[i]) + "'");
        }
        open->in.push_back(std::move(a));
      } else if (kw == "consume") {
        need(2, "consume <place>");
        open->in.push_back({std::string(tok[1]), /*reservation=*/true, 0});
      } else if (kw == "to") {
        need(2, "to <place>");
        open->out.push_back({std::string(tok[1]), /*reservation=*/false});
      } else if (kw == "emit") {
        need(2, "emit <place>");
        open->out.push_back({std::string(tok[1]), /*reservation=*/true});
      } else if (kw == "reads_state") {
        need(2, "reads_state <place>");
        open->state_refs.push_back(std::string(tok[1]));
      } else if (kw == "delay") {
        need(2, "delay <cycles>");
        open->delay = static_cast<std::uint32_t>(parse_u64(tok[1], line_no, "delay"));
      } else if (kw == "max_fires") {
        need(2, "max_fires <n>");
        open->max_fires = static_cast<int>(parse_u64(tok[1], line_no, "max_fires"));
      } else if (kw == "guard" || kw == "action") {
        need(3, "guard|action <symbol> machine|ctx");
        DescDelegate del;
        del.symbol = std::string(tok[1]);
        if (tok[2] == "machine") {
          del.takes_machine = true;
        } else if (tok[2] == "ctx") {
          del.takes_machine = false;
        } else {
          bad(line_no, "delegate arity must be 'machine' or 'ctx', got '" +
                           std::string(tok[2]) + "'");
        }
        (kw == "guard" ? open->guard : open->action) = std::move(del);
      } else {
        bad(line_no, "unknown directive '" + std::string(kw) + "' in transition block");
      }
      continue;
    }

    if (kw == "model") {
      need(2, "model <name>");
      d.model = std::string(tok[1]);
    } else if (kw == "machine") {
      need(2, "machine <type>");
      d.machine_type = std::string(tok[1]);
    } else if (kw == "include") {
      need(2, "include <header>");
      d.includes.push_back(std::string(tok[1]));
    } else if (kw == "options") {
      need(2, "options <signature>");
      d.options = std::string(tok[1]);
    } else if (kw == "deadlock_limit") {
      need(2, "deadlock_limit <cycles>");
      d.deadlock_limit = parse_u64(tok[1], line_no, "deadlock_limit");
    } else if (kw == "stage") {
      need(2, "stage <name> capacity=N [two_list=0|1]");
      DescStage s;
      s.name = std::string(tok[1]);
      for (std::size_t i = 2; i < tok.size(); ++i) {
        const auto [k, v] = split_attr(tok[i]);
        if (k == "capacity")
          s.capacity = static_cast<std::uint32_t>(parse_u64(v, line_no, "capacity"));
        else if (k == "two_list")
          s.forced_two_list = parse_u64(v, line_no, "two_list") != 0 ? 1 : 0;
        else
          bad(line_no, "unknown stage attribute '" + std::string(tok[i]) + "'");
      }
      d.stages.push_back(std::move(s));
    } else if (kw == "place") {
      need(2, "place <name> stage=S [delay=N]");
      DescPlace p;
      p.name = std::string(tok[1]);
      for (std::size_t i = 2; i < tok.size(); ++i) {
        const auto [k, v] = split_attr(tok[i]);
        if (k == "stage")
          p.stage = std::string(v);
        else if (k == "delay")
          p.delay = static_cast<std::uint32_t>(parse_u64(v, line_no, "delay"));
        else
          bad(line_no, "unknown place attribute '" + std::string(tok[i]) + "'");
      }
      if (p.stage.empty()) bad(line_no, "place '" + p.name + "' names no stage");
      d.places.push_back(std::move(p));
    } else if (kw == "end_place") {
      need(2, "end_place <name>");
      DescPlace p;
      p.name = std::string(tok[1]);
      p.end = true;
      d.places.push_back(std::move(p));
    } else if (kw == "type") {
      need(2, "type <name>");
      d.types.push_back(std::string(tok[1]));
    } else if (kw == "transition") {
      need(3, "transition <name> type=T");
      DescTransition t;
      t.name = std::string(tok[1]);
      const auto [k, v] = split_attr(tok[2]);
      if (k != "type")
        bad(line_no, "transition '" + t.name + "' needs a type=... attribute");
      t.type = std::string(v);
      d.transitions.push_back(std::move(t));
      open = &d.transitions.back();
    } else if (kw == "independent") {
      need(2, "independent <name>");
      DescTransition t;
      t.name = std::string(tok[1]);
      t.independent = true;
      d.transitions.push_back(std::move(t));
      open = &d.transitions.back();
    } else {
      bad(line_no, "unknown directive '" + std::string(kw) + "'");
    }
  }

  if (!saw_version)
    throw ModelError("description is empty — expected a '" +
                     std::string(kDescVersion) + "' version line");
  if (open != nullptr)
    throw ModelError("description ends inside transition '" + open->name +
                     "' (missing 'end')");
  if (d.model.empty()) throw ModelError("description declares no model name");
  return d;
}

Description describe_net(const core::Net& net, const core::EngineOptions& options) {
  Description d;
  d.model = net.name();
  d.machine_type = net.emit_machine_type();
  d.includes = net.emit_includes();
  d.options = core::options_signature(options);
  d.deadlock_limit = options.deadlock_limit;

  // Declared stages (id 0 is the automatic virtual end stage).
  for (unsigned s = 1; s < net.num_stages(); ++s) {
    const core::PipelineStage& st = net.stage(static_cast<core::StageId>(s));
    DescStage ds;
    ds.name = st.name();
    ds.capacity = st.capacity();
    if (st.two_list_forced()) ds.forced_two_list = st.two_list() ? 1 : 0;
    d.stages.push_back(std::move(ds));
  }

  // Declared places (id 0 is the automatic virtual end place).
  for (unsigned p = 1; p < net.num_places(); ++p) {
    const core::Place& pl = net.place(static_cast<core::PlaceId>(p));
    DescPlace dp;
    dp.name = pl.name;
    if (net.stage(pl.stage).is_end()) {
      dp.end = true;
    } else {
      dp.stage = net.stage(pl.stage).name();
      dp.delay = pl.delay;
    }
    d.places.push_back(std::move(dp));
  }

  for (unsigned t = 0; t < net.num_types(); ++t)
    d.types.push_back(net.type_name(static_cast<core::TypeId>(t)));

  const auto place_name = [&net](core::PlaceId p) -> std::string {
    return p == net.end_place() ? kEndPlaceName : net.place(p).name;
  };

  std::string anonymous;
  for (unsigned t = 0; t < net.num_transitions(); ++t) {
    const core::Transition& tr = net.transition(static_cast<core::TransitionId>(t));
    if (tr.guard_fn() != nullptr && tr.guard_symbol().empty())
      anonymous += "\n  guard of '" + tr.name() + "'";
    if (tr.action_fn() != nullptr && tr.action_symbol().empty())
      anonymous += "\n  action of '" + tr.name() + "'";

    DescTransition dt;
    dt.name = tr.name();
    dt.independent = tr.independent();
    if (!dt.independent) dt.type = net.type_name(tr.subnet());
    for (const core::InArc& a : tr.inputs())
      dt.in.push_back({place_name(a.place), a.need == core::ArcNeed::reservation,
                       a.priority});
    for (const core::OutArc& a : tr.outputs())
      dt.out.push_back({place_name(a.place), a.emit == core::ArcEmit::reservation});
    for (const core::PlaceId p : tr.state_refs())
      dt.state_refs.push_back(place_name(p));
    dt.delay = tr.delay();
    dt.max_fires = tr.max_fires_per_cycle();
    if (!tr.guard_symbol().empty())
      dt.guard = {tr.guard_symbol(), tr.guard_symbol_takes_machine()};
    if (!tr.action_symbol().empty())
      dt.action = {tr.action_symbol(), tr.action_symbol_takes_machine()};
    d.transitions.push_back(std::move(dt));
  }

  if (!anonymous.empty())
    throw ModelError(
        "model '" + d.model +
        "' binds anonymous delegates that cannot be serialized (register them "
        "as named free functions in a DelegateRegistry):" +
        anonymous);
  return d;
}

core::EngineOptions engine_options(const Description& d, core::EngineOptions base) {
  try {
    core::apply_options_signature(base, d.options);
  } catch (const std::invalid_argument& e) {
    throw ModelError("description of model '" + d.model + "': " + e.what());
  }
  base.deadlock_limit = d.deadlock_limit;
  return base;
}

Description read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ModelError("cannot read model description file '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return parse(text.str());
  } catch (const ModelError& e) {
    throw ModelError(path + ": " + e.what());
  }
}

void write_file(const std::string& path, const Description& d) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw ModelError("cannot write model description file '" + path + "'");
  out << to_text(d);
  if (!out.flush()) throw ModelError("failed writing model description file '" + path + "'");
}

std::string canonical_file_name(const Description& d) {
  std::string name;
  for (char c : d.model)
    name += static_cast<char>(c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
  return name + ".rcpn";
}

}  // namespace rcpn::desc

namespace rcpn::model {

desc::Description ModelBuilderBase::describe(const core::EngineOptions& options) const {
  if (!built())
    throw ModelError("model '" + name_ +
                     "': describe() requires a built model (call build() first)");
  return desc::describe_net(*net_, options);
}

void ModelBuilderBase::from_description(const desc::Description& d,
                                        const desc::DelegateRegistry& registry) {
  if (d.version != desc::kDescVersion)
    throw ModelError("model description version '" + d.version +
                     "' is not supported (this library reads " +
                     std::string(desc::kDescVersion) + ")");
  if (built() || !stages_.empty() || !places_.empty() || !types_.empty() ||
      !transitions_.empty())
    throw ModelError("from_description requires an empty, un-built builder "
                     "(model '" + name_ + "' already has declarations)");
  if (!d.machine_type.empty() && d.machine_type != registry.machine_type())
    throw ModelError("description of model '" + d.model +
                     "' names machine type '" + d.machine_type +
                     "' but the DelegateRegistry binds '" +
                     registry.machine_type() + "'");

  name_ = d.model;
  use_delegates_checked(registry, std::type_index(typeid(void)));

  std::map<std::string, StageHandle> stages;
  std::map<std::string, PlaceHandle> places;
  std::map<std::string, TypeHandle> types;

  for (const desc::DescStage& s : d.stages) {
    const StageHandle h = add_stage(s.name, s.capacity);
    if (s.forced_two_list >= 0) force_two_list(h, s.forced_two_list != 0);
    stages.emplace(s.name, h);
  }
  for (const desc::DescPlace& p : d.places) {
    if (p.end) {
      places.emplace(p.name, add_end_place(p.name));
      continue;
    }
    const auto st = stages.find(p.stage);
    if (st == stages.end())
      throw ModelError("description of model '" + d.model + "': place '" + p.name +
                       "' is bound to unknown stage '" + p.stage + "'");
    places.emplace(p.name, add_place(p.name, st->second, p.delay));
  }
  for (const std::string& t : d.types) types.emplace(t, add_type(t));

  const auto place_of = [&](const std::string& name,
                            const std::string& where) -> PlaceHandle {
    if (name == desc::kEndPlaceName) return end();
    const auto it = places.find(name);
    if (it == places.end())
      throw ModelError("description of model '" + d.model + "': transition '" +
                       where + "' references unknown place '" + name + "'");
    return it->second;
  };

  for (const desc::DescTransition& t : d.transitions) {
    TypeHandle type;
    if (!t.independent) {
      const auto it = types.find(t.type);
      if (it == types.end())
        throw ModelError("description of model '" + d.model + "': transition '" +
                         t.name + "' has unknown type '" + t.type + "'");
      type = it->second;
    }
    TransitionHandle h;
    TransitionDef& def = add_transition_def(t.name, type, t.independent, &h);
    for (const desc::DescArcIn& a : t.in)
      def.in.push_back({place_of(a.place, t.name), a.reservation, a.priority});
    for (const desc::DescArcOut& a : t.out)
      def.out.push_back({place_of(a.place, t.name), a.reservation});
    for (const std::string& p : t.state_refs)
      def.state_refs.push_back(place_of(p, t.name));
    def.delay = t.delay;
    def.max_fires = t.max_fires;
    if (!t.guard.symbol.empty()) {
      bind_guard_ref(def, t.guard.symbol);
      if (def.guard_symbol_machine != t.guard.takes_machine)
        throw ModelError("description of model '" + d.model + "': guard '" +
                         t.guard.symbol + "' of transition '" + t.name +
                         "' is declared with arity '" +
                         (t.guard.takes_machine ? "machine" : "ctx") +
                         "' but the registry binding takes '" +
                         (def.guard_symbol_machine ? "machine" : "ctx") + "'");
    }
    if (!t.action.symbol.empty()) {
      bind_action_ref(def, t.action.symbol);
      if (def.action_symbol_machine != t.action.takes_machine)
        throw ModelError("description of model '" + d.model + "': action '" +
                         t.action.symbol + "' of transition '" + t.name +
                         "' is declared with arity '" +
                         (t.action.takes_machine ? "machine" : "ctx") +
                         "' but the registry binding takes '" +
                         (def.action_symbol_machine ? "machine" : "ctx") + "'");
    }
  }
}

}  // namespace rcpn::model
