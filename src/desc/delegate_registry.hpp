// DelegateRegistry: the single source of truth for a model's named
// guard/action delegates (paper §3's "semantic functions bound by symbol").
//
// Before this existed, a named delegate was registered at every call site as
// a (function, spelled-out symbol string) pair via guard_named/action_named —
// emit-time string plumbing with nothing guaranteeing the same symbol maps to
// the same function everywhere. A DelegateRegistry owns that mapping once per
// machine family:
//
//   const desc::DelegateRegistry& fig2_delegates() {
//     static const desc::DelegateRegistry reg = [] {
//       desc::DelegateRegistry r("rcpn::machines::Fig2Machine",
//                                {"machines/simple_pipeline.hpp"});
//       auto d = r.bind<Fig2Machine>();
//       d.guard<&fig2_u1_guard>("rcpn::machines::fig2_u1_guard");
//       d.action<&fig2_u1_action>("rcpn::machines::fig2_u1_action");
//       return r;
//     }();
//     return reg;
//   }
//
// and is consumed by all three symbol users:
//   * model describe callbacks — b.use_delegates(reg) then
//     .guard_ref("sym") / .action_ref("sym") bind by symbol (the registry
//     also supplies the emit machine type + includes);
//   * gen::emit_simulator — the symbols lowered onto the net come from the
//     registry bindings, so the emitted direct calls and the registered
//     function pointers cannot drift apart;
//   * desc::Description loading — ModelBuilderBase::from_description resolves
//     every serialized symbol through the registry and rejects unknown ones
//     with a ModelError naming the symbol.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <typeindex>
#include <vector>

#include "core/transition.hpp"
#include "model/model_builder.hpp"

namespace rcpn::desc {

template <typename Machine>
class TypedDelegates;

class DelegateRegistry {
 public:
  /// One named delegate: the type-erased trampoline (env = machine pointer,
  /// exactly the guard_named/action_named shape) plus the arity the call must
  /// be emitted with — (Machine&, FireCtx&) vs (FireCtx&).
  struct Binding {
    core::GuardFn guard = nullptr;    // set for guard bindings
    core::ActionFn action = nullptr;  // set for action bindings
    bool takes_machine = true;
  };

  /// `machine_type` is the fully-qualified C++ machine context type and
  /// `includes` the header(s) declaring it and the delegate functions — the
  /// emission metadata ModelBuilderBase::use_delegates installs on the model.
  explicit DelegateRegistry(std::string machine_type,
                            std::vector<std::string> includes = {});

  const std::string& machine_type() const { return machine_type_; }
  const std::vector<std::string>& includes() const { return includes_; }

  /// Typed fluent adder for delegates over `Machine`. The first bind() pins
  /// the registry's machine context type; a later bind with a different type
  /// throws ModelError (one registry, one context type).
  template <typename Machine>
  TypedDelegates<Machine> bind();

  /// True if the registry's delegates take `machine` as their context type
  /// (always true for an empty registry — nothing pinned the type yet).
  bool matches_machine(std::type_index machine) const {
    return !typed_ || ctx_type_ == machine;
  }

  /// Lookup by symbol; nullptr when unknown.
  const Binding* find_guard(std::string_view symbol) const;
  const Binding* find_action(std::string_view symbol) const;

  /// All registered symbols, sorted (diagnostics / docs).
  std::vector<std::string> guard_symbols() const;
  std::vector<std::string> action_symbols() const;

  /// Register a binding under `symbol`; throws ModelError on a duplicate.
  /// Prefer the typed bind<Machine>() adder, which derives the trampoline and
  /// arity from the function itself.
  void add_guard(std::string symbol, Binding binding);
  void add_action(std::string symbol, Binding binding);

 private:
  void pin_machine(std::type_index machine);

  template <typename Machine>
  friend class TypedDelegates;

  std::string machine_type_;
  std::vector<std::string> includes_;
  bool typed_ = false;
  std::type_index ctx_type_ = std::type_index(typeid(void));
  // Ordered maps: symbol listings (errors, docs) are deterministic.
  std::map<std::string, Binding, std::less<>> guards_;
  std::map<std::string, Binding, std::less<>> actions_;
};

/// Fluent adder returned by DelegateRegistry::bind<Machine>(). Instantiates
/// the same direct-call trampolines as guard_named/action_named: `Fn` is the
/// function itself, so the indirect call the engine makes is the only
/// indirection between the hot loop and the delegate body.
template <typename Machine>
class TypedDelegates {
 public:
  template <auto Fn>
  TypedDelegates& guard(std::string symbol) {
    DelegateRegistry::Binding b;
    if constexpr (std::is_invocable_r_v<bool, decltype(Fn), Machine&, core::FireCtx&>) {
      b.takes_machine = true;
      b.guard = [](void* env, core::FireCtx& ctx) {
        return static_cast<bool>(Fn(*static_cast<Machine*>(env), ctx));
      };
    } else {
      static_assert(std::is_invocable_r_v<bool, decltype(Fn), core::FireCtx&>,
                    "registry guard must be callable as bool(Machine&, FireCtx&) "
                    "or bool(FireCtx&)");
      b.takes_machine = false;
      b.guard = [](void*, core::FireCtx& ctx) { return static_cast<bool>(Fn(ctx)); };
    }
    reg_->add_guard(std::move(symbol), b);
    return *this;
  }

  template <auto Fn>
  TypedDelegates& action(std::string symbol) {
    DelegateRegistry::Binding b;
    if constexpr (std::is_invocable_v<decltype(Fn), Machine&, core::FireCtx&>) {
      b.takes_machine = true;
      b.action = [](void* env, core::FireCtx& ctx) {
        Fn(*static_cast<Machine*>(env), ctx);
      };
    } else {
      static_assert(std::is_invocable_v<decltype(Fn), core::FireCtx&>,
                    "registry action must be callable as void(Machine&, FireCtx&) "
                    "or void(FireCtx&)");
      b.takes_machine = false;
      b.action = [](void*, core::FireCtx& ctx) { Fn(ctx); };
    }
    reg_->add_action(std::move(symbol), b);
    return *this;
  }

 private:
  friend class DelegateRegistry;
  explicit TypedDelegates(DelegateRegistry* reg) : reg_(reg) {}
  DelegateRegistry* reg_;
};

template <typename Machine>
TypedDelegates<Machine> DelegateRegistry::bind() {
  pin_machine(std::type_index(typeid(Machine)));
  return TypedDelegates<Machine>(this);
}

}  // namespace rcpn::desc
