// Serialized model descriptions: the `rcpn-model/1` format (ROADMAP #4, the
// paper's ADL angle — ADL → RCPN model → generated simulator, with the RCPN
// model now a *data* artifact instead of compiled-in C++).
//
// A Description is the complete schedule-defining content of a ModelBuilder
// model: stages (order, capacity, pinned two-list flags), places (stage
// binding, residence delay, end places), operation classes, transitions
// (trigger/reservation arcs with priorities, move/reservation outputs,
// state_refs, delays, max_fires, named guard/action delegate symbols with
// arity), the emission metadata (machine type + includes), and the
// schedule-affecting EngineOptions signature. Round-trip contract: for any
// built model, build → describe → load → build produces byte-identical
// retire traces and stats on every backend (the lockstep tests hold all five
// machines + the fuzz family to it).
//
// The text form is line-based and canonical — one spelling per model, so
// describing the same model twice yields byte-identical files and the model
// zoo (models/*.rcpn) can be diffed in CI. See docs/rcpn-format.md for the
// schema and versioning policy.
//
// What a description deliberately does NOT contain: delegate *code*. Symbols
// are resolved at load time through a desc::DelegateRegistry; an unknown
// symbol or version string is a model::ModelError naming it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.hpp"
#include "core/net.hpp"
#include "model/model_builder.hpp"

namespace rcpn::desc {

/// Version tag of the format this library reads and writes — the first line
/// of every .rcpn file. Parsers reject any other version (there is no silent
/// best-effort loading of future formats).
inline constexpr const char* kDescVersion = "rcpn-model/1";

/// Name the serialized form uses for the virtual end place (id 0) in arcs.
/// Declared place names may not start with '@'.
inline constexpr const char* kEndPlaceName = "@end";

struct DescStage {
  std::string name;
  std::uint32_t capacity = 1;
  /// Pinned two-list flag: -1 = not forced (engine analysis decides),
  /// 0/1 = force_two_list(false/true).
  int forced_two_list = -1;
};

struct DescPlace {
  std::string name;
  std::string stage;  ///< empty for additional end places
  std::uint32_t delay = 1;
  bool end = false;
};

struct DescArcIn {
  std::string place;
  bool reservation = false;  // false: trigger arc
  std::uint8_t priority = 0;
};

struct DescArcOut {
  std::string place;
  bool reservation = false;  // false: move the instruction token
};

/// A named delegate reference: the fully-qualified symbol plus the arity the
/// registry binding must have ((Machine&, FireCtx&) vs (FireCtx&)).
struct DescDelegate {
  std::string symbol;  ///< empty = no delegate bound
  bool takes_machine = true;
};

struct DescTransition {
  std::string name;
  std::string type;  ///< operation class; empty for independent transitions
  bool independent = false;
  std::vector<DescArcIn> in;
  std::vector<DescArcOut> out;
  std::vector<std::string> state_refs;
  std::uint32_t delay = 0;
  int max_fires = 1;
  DescDelegate guard;
  DescDelegate action;
};

class Description {
 public:
  std::string version = kDescVersion;
  /// Model (net) name, e.g. "Fig5".
  std::string model;
  /// Emission metadata: the machine context type and its headers.
  std::string machine_type;
  std::vector<std::string> includes;
  /// Schedule-affecting EngineOptions as a core::options_signature() string.
  std::string options;
  std::uint64_t deadlock_limit = core::EngineOptions{}.deadlock_limit;
  std::vector<DescStage> stages;
  std::vector<DescPlace> places;
  std::vector<std::string> types;
  std::vector<DescTransition> transitions;
};

/// Serialize to the canonical text form (deterministic: equal descriptions
/// render byte-identically). Throws model::ModelError if a name cannot be
/// represented (embedded whitespace, a leading '@', or an empty name).
std::string to_text(const Description& d);

/// Parse the text form. Throws model::ModelError with the offending line
/// number on malformed input, and names the version string when it is not
/// kDescVersion.
Description parse(std::string_view text);

/// Extract the description of a lowered net under `options`. Throws
/// model::ModelError (naming the transitions) if any bound delegate is
/// anonymous — only symbol-referenced delegates serialize.
Description describe_net(const core::Net& net, const core::EngineOptions& options);

/// EngineOptions described by `d` applied over `base`: the options signature
/// flags and deadlock_limit are overwritten, everything else (backend, obs,
/// ...) is kept from `base`. Throws model::ModelError on an unknown flag.
core::EngineOptions engine_options(const Description& d, core::EngineOptions base = {});

/// Read + parse a .rcpn file; throws model::ModelError naming the path on
/// IO failure.
Description read_file(const std::string& path);

/// Serialize + write; throws model::ModelError naming the path on failure.
void write_file(const std::string& path, const Description& d);

/// Canonical zoo file name for a description: the lowercased model name plus
/// ".rcpn" (e.g. "StrongArm" -> "strongarm.rcpn").
std::string canonical_file_name(const Description& d);

}  // namespace rcpn::desc
