#include "desc/delegate_registry.hpp"

namespace rcpn::desc {

DelegateRegistry::DelegateRegistry(std::string machine_type,
                                   std::vector<std::string> includes)
    : machine_type_(std::move(machine_type)), includes_(std::move(includes)) {}

void DelegateRegistry::pin_machine(std::type_index machine) {
  if (typed_ && ctx_type_ != machine)
    throw model::ModelError("DelegateRegistry for '" + machine_type_ +
                            "' bound with two different machine context types");
  typed_ = true;
  ctx_type_ = machine;
}

const DelegateRegistry::Binding* DelegateRegistry::find_guard(
    std::string_view symbol) const {
  const auto it = guards_.find(symbol);
  return it == guards_.end() ? nullptr : &it->second;
}

const DelegateRegistry::Binding* DelegateRegistry::find_action(
    std::string_view symbol) const {
  const auto it = actions_.find(symbol);
  return it == actions_.end() ? nullptr : &it->second;
}

std::vector<std::string> DelegateRegistry::guard_symbols() const {
  std::vector<std::string> out;
  for (const auto& [sym, _] : guards_) out.push_back(sym);
  return out;
}

std::vector<std::string> DelegateRegistry::action_symbols() const {
  std::vector<std::string> out;
  for (const auto& [sym, _] : actions_) out.push_back(sym);
  return out;
}

void DelegateRegistry::add_guard(std::string symbol, Binding binding) {
  if (binding.guard == nullptr)
    throw model::ModelError("registry guard binding for '" + symbol +
                            "' has no guard function");
  if (!guards_.emplace(std::move(symbol), binding).second)
    throw model::ModelError("duplicate guard symbol in DelegateRegistry for '" +
                            machine_type_ + "'");
}

void DelegateRegistry::add_action(std::string symbol, Binding binding) {
  if (binding.action == nullptr)
    throw model::ModelError("registry action binding for '" + symbol +
                            "' has no action function");
  if (!actions_.emplace(std::move(symbol), binding).second)
    throw model::ModelError("duplicate action symbol in DelegateRegistry for '" +
                            machine_type_ + "'");
}

}  // namespace rcpn::desc

namespace rcpn::model {

// The registry-facing half of ModelBuilderBase lives here (not in
// model_builder.cpp) so the builder header only needs a forward declaration
// of desc::DelegateRegistry, and the freestanding amalgamation pulls these
// definitions exactly when a model uses the registry API (this file is the
// companion of desc/delegate_registry.hpp).

void ModelBuilderBase::use_delegates_checked(const desc::DelegateRegistry& registry,
                                             std::type_index machine) {
  // typeid(void) = the untyped base overload: accept any registry.
  if (machine != std::type_index(typeid(void)) && !registry.matches_machine(machine))
    throw ModelError("model '" + name_ + "': use_delegates called with a "
                     "DelegateRegistry for machine context '" +
                     registry.machine_type() +
                     "', which is not this builder's Machine type");
  delegates_ = &registry;
  emit_machine_type_ = registry.machine_type();
  for (const std::string& header : registry.includes()) {
    bool present = false;
    for (const std::string& have : emit_includes_) present = present || have == header;
    if (!present) emit_includes_.push_back(header);
  }
}

const desc::DelegateRegistry& ModelBuilderBase::require_delegates(
    const char* what, const std::string& symbol) const {
  if (delegates_ == nullptr)
    throw ModelError("model '" + name_ + "': " + what + "(\"" + symbol +
                     "\") requires use_delegates(registry) to be called first");
  return *delegates_;
}

void ModelBuilderBase::bind_guard_ref(TransitionDef& def, const std::string& symbol) {
  const desc::DelegateRegistry& reg = require_delegates("guard_ref", symbol);
  const desc::DelegateRegistry::Binding* b = reg.find_guard(symbol);
  if (b == nullptr)
    throw ModelError("model '" + name_ + "': unknown guard delegate symbol '" +
                     symbol + "' — not registered in the DelegateRegistry for '" +
                     reg.machine_type() + "'");
  def.guard = nullptr;
  def.fast_guard = b->guard;
  def.guard_symbol = symbol;
  def.guard_symbol_machine = b->takes_machine;
  if (b->takes_machine) def.needs_machine = true;
}

void ModelBuilderBase::bind_action_ref(TransitionDef& def, const std::string& symbol) {
  const desc::DelegateRegistry& reg = require_delegates("action_ref", symbol);
  const desc::DelegateRegistry::Binding* b = reg.find_action(symbol);
  if (b == nullptr)
    throw ModelError("model '" + name_ + "': unknown action delegate symbol '" +
                     symbol + "' — not registered in the DelegateRegistry for '" +
                     reg.machine_type() + "'");
  def.action = nullptr;
  def.fast_action = b->action;
  def.action_symbol = symbol;
  def.action_symbol_machine = b->takes_machine;
  if (b->takes_machine) def.needs_machine = true;
}

}  // namespace rcpn::model
