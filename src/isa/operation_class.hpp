// Operation classes and operand-slot conventions.
//
// An operation class groups instructions that flow through the same pipeline
// path and share a binary format (paper §3). Its symbols — Constant, µ-op or
// Register — are bound to concrete Operand objects (ConstOperand / RegRef)
// when an instruction is decoded, producing a customized instance of the
// class's RCPN sub-net for that instruction ("partial evaluation").
//
// The machine models in src/machines agree on which token operand slot holds
// which symbol so that sub-net guards/actions can be written once per class.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/net.hpp"

namespace rcpn::isa {

/// Machine-specific decode payload carried by instruction tokens.
struct Payload {
  virtual ~Payload() = default;
};

/// Token operand-slot conventions shared by the processor models.
/// (InstructionToken::kMaxOps is 6.)
enum OperandSlot : int {
  kSlotDst = 0,    // destination register (rd)
  kSlotSrc1 = 1,   // first source / base / accumulator (rn)
  kSlotSrc2 = 2,   // second source (rm / shifter register)
  kSlotSrc3 = 3,   // shift-amount register (rs)
  kSlotFlags = 4,  // CPSR reference (condition / flag writes)
  kSlotExtra = 5,  // model-specific (e.g. LDM/STM µ-op register)
};

/// Registry mapping operation-class names to the RCPN TypeIds of a net, so
/// decoders and models stay consistent about sub-net identity.
class OperationClassSet {
 public:
  core::TypeId add(core::Net& net, const std::string& name) {
    const core::TypeId id = net.add_type(name);
    if (static_cast<std::size_t>(id) >= names_.size()) names_.resize(id + 1);
    names_[id] = name;
    return id;
  }
  const std::string& name(core::TypeId id) const { return names_[id]; }
  unsigned size() const { return static_cast<unsigned>(names_.size()); }

 private:
  std::vector<std::string> names_;
};

}  // namespace rcpn::isa
