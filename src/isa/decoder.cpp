#include "isa/decoder.hpp"

namespace rcpn::isa {

DecodeCache::Entry* DecodeCache::build_entry(Entry* e, std::uint32_t pc,
                                             std::uint32_t raw) {
  e->pc = pc;
  e->raw = raw;
  e->stale = false;
  e->operands.clear();
  e->token = core::InstructionToken{};
  e->token.pc = pc;
  e->token.raw = raw;
  factory_(*e);
  return e;
}

core::InstructionToken* DecodeCache::get_slow(std::uint32_t pc, std::uint32_t raw) {
  if (bypass_) {
    // Ablation: decode and bind from scratch on every fetch. Entries that
    // may still be in flight are parked in a graveyard instead of freed.
    // Reclaim drained entries *before* allocating: the fresh entry's token
    // is not marked in-flight until emit_instruction.
    if (bypass_graveyard_.size() > 4096) {
      std::erase_if(bypass_graveyard_, [](const std::unique_ptr<Entry>& g) {
        return !g->token.in_flight;
      });
    }
    ++stats_.misses;
    auto fresh = std::make_unique<Entry>();
    Entry* e = build_entry(fresh.get(), pc, raw);
    bypass_graveyard_.push_back(std::move(fresh));
    return &e->token;
  }

  auto [it, inserted] = entries_.try_emplace(pc, nullptr);
  if (inserted) {
    ++stats_.misses;
    it->second = std::make_unique<Entry>();
    Entry* e = build_entry(it->second.get(), pc, raw);
    fast_[fast_index(pc)] = FastSlot{pc, e->raw, e};
    return &e->token;
  }

  Entry* e = it->second.get();
  if (e->raw != raw || e->stale) {
    // Self-modifying code, or a token left in flight by an interrupted
    // previous run (reset_runtime): rebuild in place. Republish the fast
    // slot too — it may still hold the pre-rebuild raw snapshot, and an SMC
    // write restoring that old encoding would otherwise fast-hit the stale
    // slot and return the token decoded for the *new* encoding.
    ++stats_.rebuilds;
    build_entry(e, pc, raw);
    fast_[fast_index(pc)] = FastSlot{pc, e->raw, e};
    return &e->token;
  }
  fast_[fast_index(pc)] = FastSlot{pc, e->raw, e};

  // Walk the clone chain for a token that is not in flight.
  for (Entry* cur = e; cur != nullptr; cur = cur->clone.get()) {
    if (!cur->token.in_flight) {
      ++stats_.hits;
      cur->token.reset_dynamic();
      cur->token.pc = pc;
      return &cur->token;
    }
    if (cur->clone == nullptr) {
      ++stats_.clones;
      cur->clone = std::make_unique<Entry>();
      return &build_entry(cur->clone.get(), pc, raw)->token;
    }
  }
  return nullptr;  // unreachable
}

void DecodeCache::clear() {
  entries_.clear();
  bypass_graveyard_.clear();
  fast_.assign(fast_.size(), FastSlot{});
  stats_ = Stats{};
}

void DecodeCache::reset_runtime() {
  for (auto& [pc, e] : entries_) {
    // Clones exist only for in-flight collisions; after an engine reset no
    // token is legitimately in flight, so the chains are dead weight.
    e->clone.reset();
    if (e->token.in_flight) e->stale = true;
    e->token.reset_dynamic();
  }
  bypass_graveyard_.clear();
  // The fast index may point at freed clones; get_slow repopulates it (and
  // filters stale entries) on first touch per pc.
  fast_.assign(fast_.size(), FastSlot{});
}

}  // namespace rcpn::isa
