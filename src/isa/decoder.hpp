// Decode cache: decode-once, token-cached instruction instances.
//
// This implements two of the paper's three §5 speedup ingredients:
//  * "when an instruction token is generated, the corresponding instruction
//    is decoded and stored in the token … we do not need to re-decode the
//    instruction in different pipeline stages";
//  * "the tokens are cached for later reuse in the simulator" — a static
//    instruction keeps its fully-bound token (operands already pointing at
//    RegRefs/Consts, sub-net already selected via token.type) across dynamic
//    executions. If the same static instruction is in flight more than once
//    (tight loop shorter than the pipeline), the cache transparently chains
//    clones.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/token.hpp"
#include "isa/operation_class.hpp"
#include "regfile/operand.hpp"

namespace rcpn::isa {

class DecodeCache {
 public:
  struct Entry {
    core::InstructionToken token;
    /// Owned operand objects the token's slots point into.
    std::vector<std::unique_ptr<regfile::Operand>> operands;
    std::unique_ptr<Payload> payload;
    std::uint32_t pc = 0;
    std::uint32_t raw = 0;
    /// Set by reset_runtime() for entries whose token was in flight when the
    /// previous run stopped: their operands may hold reservations into
    /// machine state that was since torn down, so the entry is rebuilt on its
    /// next lookup instead of reused.
    bool stale = false;
    /// Next clone for in-flight collisions.
    std::unique_ptr<Entry> clone;
  };

  /// Fills a fresh entry: sets token.type/payload and binds the operand
  /// slots. token.pc/raw are pre-set by the cache.
  using Factory = std::function<void(Entry&)>;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t clones = 0;
    std::uint64_t rebuilds = 0;
  };

  explicit DecodeCache(Factory factory) : factory_(std::move(factory)) {}

  /// Get a ready-to-issue token for the instruction at `pc` with encoding
  /// `raw`. Never returns a token that is still in flight. A direct-mapped
  /// index makes the steady-state (loop) lookup a couple of loads.
  core::InstructionToken* get(std::uint32_t pc, std::uint32_t raw) {
    if (!bypass_) {
      // The SMC raw-check compares against the slot's own copy of the
      // encoding, so the steady-state hit touches the Entry exactly once
      // (the in-flight check) instead of chasing the pointer twice.
      const FastSlot& slot = fast_[fast_index(pc)];
      if (slot.pc == pc && slot.raw == raw && !slot.entry->token.in_flight) {
        ++stats_.hits;
        slot.entry->token.reset_dynamic();
        slot.entry->token.pc = pc;
        return &slot.entry->token;
      }
    }
    return get_slow(pc, raw);
  }

  /// Ablation hook (bench_ablation_decode): bypass the cache entirely —
  /// every fetch re-decodes and re-binds as if tokens were not cached.
  void set_bypass(bool v) { bypass_ = v; }

  const Stats& stats() const { return stats_; }
  std::size_t size() const { return entries_.size(); }
  void clear();

  /// Program-reload reset that *keeps* the decoded entries (clear() throws
  /// all decode work away): drops the clone chains and the bypass graveyard,
  /// resets every token's dynamic state and invalidates the fast index.
  /// Entries whose token was still in flight are marked stale and rebuilt on
  /// next use — see Entry::stale. Stats are preserved (they span reloads).
  void reset_runtime();

 private:
  Entry* build_entry(Entry* e, std::uint32_t pc, std::uint32_t raw);
  core::InstructionToken* get_slow(std::uint32_t pc, std::uint32_t raw);

  static constexpr unsigned kFastBits = 12;  // 4096-slot direct-mapped index
  struct FastSlot {
    std::uint32_t pc = 0xffff'ffff;
    /// Copy of entry->raw at publication time: the fast path's SMC check
    /// without dereferencing the entry. A memory write at `pc` makes the
    /// freshly fetched raw differ, falling through to get_slow's rebuild.
    std::uint32_t raw = 0;
    Entry* entry = nullptr;
  };
  static unsigned fast_index(std::uint32_t pc) {
    return (pc >> 2) & ((1u << kFastBits) - 1);
  }

  Factory factory_;
  std::unordered_map<std::uint32_t, std::unique_ptr<Entry>> entries_;
  std::vector<FastSlot> fast_ = std::vector<FastSlot>(1u << kFastBits);
  std::vector<std::unique_ptr<Entry>> bypass_graveyard_;
  Stats stats_;
  bool bypass_ = false;
};

}  // namespace rcpn::isa
