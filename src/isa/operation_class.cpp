#include "isa/operation_class.hpp"
