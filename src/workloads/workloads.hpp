// The six benchmark kernels of the paper's evaluation (§5): adpcm, blowfish,
// compress, crc, g721, go — re-created as self-contained ARM7 assembly
// kernels (see DESIGN.md §2 for the substitution rationale). Each kernel:
//   * mirrors the dominant instruction mix of its namesake (crc: bitwise ALU
//     loops; adpcm/g721: fixed-point DSP with multiplies; blowfish: S-box
//     loads; compress: hash-table probing; go: branchy byte-board scanning);
//   * is deterministic, self-seeding (embedded LCG data generators), and
//     prints a checksum via SWI so simulators can be compared end-to-end;
//   * scales its outer loop with a `scale` parameter: `default_scale` sizes
//     the Fig 10/11 benchmark runs, `test_scale` keeps tests fast.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sys/program.hpp"

namespace rcpn::workloads {

struct Workload {
  std::string name;
  std::string description;
  unsigned default_scale;
  unsigned test_scale;
  std::string (*source)(unsigned scale);
};

/// All six paper benchmarks, in the paper's order.
const std::vector<Workload>& all();

/// Lookup by name; nullptr if unknown.
const Workload* find(const std::string& name);

/// Assemble a workload at the given scale (0 = default_scale).
sys::Program build(const Workload& w, unsigned scale = 0);

}  // namespace rcpn::workloads
