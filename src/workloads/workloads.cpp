#include "workloads/workloads.hpp"

#include <stdexcept>

#include "arm/assembler.hpp"

namespace rcpn::workloads {

namespace {

std::string with_scale(const char* src, unsigned scale) {
  std::string s(src);
  const std::string key = "@SCALE@";
  const std::size_t at = s.find(key);
  if (at != std::string::npos) s.replace(at, key.size(), std::to_string(scale));
  return s;
}

// ---------------------------------------------------------------------------
// crc — CRC-32 (0xEDB88320) over a pseudo-random buffer; pure ALU + branch.
// ---------------------------------------------------------------------------
std::string crc_source(unsigned scale) {
  static const char* src = R"(
        .equ BUFLEN, 1024
_start:
        ldr sp, =0xF0000
        bl buf_init
        ldr r7, =@SCALE@
        mov r6, #0
outer:
        bl crc32_buf
        eor r6, r0, r6, ror #1
        subs r7, r7, #1
        bne outer
        mov r0, r6
        swi 3
        swi 5
        mov r0, #0
        swi 0

buf_init:
        push {r4, lr}
        ldr r0, =buffer
        ldr r1, =BUFLEN
        ldr r2, =12345
        ldr r3, =1103515245
bi_loop:
        mul r4, r2, r3
        add r2, r4, #251
        strb r2, [r0], #1
        subs r1, r1, #1
        bne bi_loop
        pop {r4, lr}
        mov pc, lr

crc32_buf:
        push {r4, r5, lr}
        ldr r1, =buffer
        ldr r2, =BUFLEN
        mvn r0, #0
        ldr r5, =0xEDB88320
cb_byte:
        ldrb r3, [r1], #1
        eor r0, r0, r3
        mov r4, #8
cb_bit:
        movs r0, r0, lsr #1
        eorcs r0, r0, r5
        subs r4, r4, #1
        bne cb_bit
        subs r2, r2, #1
        bne cb_byte
        mvn r0, r0
        pop {r4, r5, lr}
        mov pc, lr

        .ltorg
        .align 2
buffer: .space 1024
)";
  return with_scale(src, scale);
}

// ---------------------------------------------------------------------------
// adpcm — IMA-style ADPCM encoder: clamps, shifts, table lookups.
// ---------------------------------------------------------------------------
std::string adpcm_source(unsigned scale) {
  static const char* src = R"(
        .equ NSAMP, 2048
_start:
        ldr sp, =0xF0000
        bl tbl_init
        ldr r7, =@SCALE@
        mov r6, #0
ad_outer:
        bl adpcm_run
        eor r6, r6, r0
        subs r7, r7, #1
        bne ad_outer
        mov r0, r6
        swi 3
        swi 5
        mov r0, #0
        swi 0

; step table: step[0] = 7, step[i+1] = step[i] + (step[i] >> 3) + 1
tbl_init:
        ldr r0, =steptab
        mov r1, #7
        mov r2, #96
ti_loop:
        str r1, [r0], #4
        add r1, r1, r1, lsr #3
        add r1, r1, #1
        subs r2, r2, #1
        bne ti_loop
        mov pc, lr

adpcm_run:
        push {r4, r5, r6, r7, lr}
        mov r0, #0              ; checksum
        ldr r1, =98765          ; lcg state
        mov r2, #0              ; predicted
        mov r3, #0              ; index
        mov r4, #7              ; step
        ldr r5, =NSAMP
ar_loop:
        ldr r10, =1103515245
        mul r6, r1, r10
        add r1, r6, #251
        mov r6, r1, lsr #9
        mov r6, r6, lsl #16
        mov r6, r6, asr #16     ; signed 16-bit sample
        sub r7, r6, r2          ; diff
        mov r8, #0              ; code
        cmp r7, #0
        rsblt r7, r7, #0
        movlt r8, #8            ; sign bit
        cmp r7, r4
        orrge r8, r8, #4
        subge r7, r7, r4
        mov r10, r4, lsr #1
        cmp r7, r10
        orrge r8, r8, #2
        subge r7, r7, r10
        mov r10, r4, lsr #2
        cmp r7, r10
        orrge r8, r8, #1
        mov r9, r4, lsr #3      ; vpdiff
        tst r8, #4
        addne r9, r9, r4
        tst r8, #2
        addne r9, r9, r4, lsr #1
        tst r8, #1
        addne r9, r9, r4, lsr #2
        tst r8, #8
        addeq r2, r2, r9
        subne r2, r2, r9
        ldr r10, =32767
        cmp r2, r10
        movgt r2, r10
        ldr r10, =-32768
        cmp r2, r10
        movlt r2, r10
        and r10, r8, #7
        ldr r11, =idxtab
        ldr r10, [r11, r10, lsl #2]
        add r3, r3, r10
        cmp r3, #0
        movlt r3, #0
        cmp r3, #88
        movgt r3, #88
        ldr r11, =steptab
        ldr r4, [r11, r3, lsl #2]
        eor r0, r8, r0, ror #4
        subs r5, r5, #1
        bne ar_loop
        pop {r4, r5, r6, r7, lr}
        mov pc, lr

        .ltorg
        .align 2
idxtab: .word -1, -1, -1, -1, 2, 4, 6, 8
steptab: .space 384
)";
  return with_scale(src, scale);
}

// ---------------------------------------------------------------------------
// blowfish — 16-round Feistel with generated P-array / S-boxes.
// ---------------------------------------------------------------------------
std::string blowfish_source(unsigned scale) {
  static const char* src = R"(
        .equ NBLK, 256
_start:
        ldr sp, =0xF0000
        bl bf_init
        ldr r7, =@SCALE@
        mov r6, #0
bf_outer:
        bl bf_encrypt_all
        eor r6, r6, r0
        subs r7, r7, #1
        bne bf_outer
        mov r0, r6
        swi 3
        swi 5
        mov r0, #0
        swi 0

bf_init:
        push {r4, lr}
        ldr r0, =ptab
        ldr r1, =1042           ; 18 P words + 1024 S words
        ldr r2, =424242
        ldr r3, =1664525
fi_loop:
        mul r4, r2, r3
        add r2, r4, #223
        str r2, [r0], #4
        subs r1, r1, #1
        bne fi_loop
        pop {r4, lr}
        mov pc, lr

bf_encrypt_all:
        push {r4, r5, r6, lr}
        mov r0, #0
        ldr r4, =0x12345678
        ldr r5, =0x9ABCDEF0
        ldr r6, =NBLK
ea_loop:
        bl bf_encrypt_block
        eor r0, r4, r0, ror #1
        eor r0, r0, r5
        subs r6, r6, #1
        bne ea_loop
        pop {r4, r5, r6, lr}
        mov pc, lr

; one block: L/R in r4/r5
bf_encrypt_block:
        push {r8, r9, r10, lr}
        ldr r8, =ptab
        mov r9, #16
eb_round:
        ldr r10, [r8], #4
        eor r4, r4, r10
        ldr r11, =sbox
        mov r10, r4, lsr #24
        ldr r10, [r11, r10, lsl #2]
        add r11, r11, #1024
        mov r12, r4, lsr #16
        and r12, r12, #0xFF
        ldr r12, [r11, r12, lsl #2]
        add r10, r10, r12
        add r11, r11, #1024
        mov r12, r4, lsr #8
        and r12, r12, #0xFF
        ldr r12, [r11, r12, lsl #2]
        eor r10, r10, r12
        add r11, r11, #1024
        and r12, r4, #0xFF
        ldr r12, [r11, r12, lsl #2]
        add r10, r10, r12
        eor r5, r5, r10
        mov r10, r4
        mov r4, r5
        mov r5, r10
        subs r9, r9, #1
        bne eb_round
        ldr r10, [r8], #4
        eor r5, r5, r10
        ldr r10, [r8], #4
        eor r4, r4, r10
        pop {r8, r9, r10, lr}
        mov pc, lr

        .ltorg
        .align 2
ptab:   .space 72
sbox:   .space 4096
)";
  return with_scale(src, scale);
}

// ---------------------------------------------------------------------------
// compress — LZW-style hash-table probing (load/store + branch heavy).
// ---------------------------------------------------------------------------
std::string compress_source(unsigned scale) {
  static const char* src = R"(
        .equ HSIZE, 4096
        .equ NIN, 4096
_start:
        ldr sp, =0xF0000
        ldr r7, =@SCALE@
        mov r6, #0
co_outer:
        bl compress_run
        eor r6, r6, r0
        subs r7, r7, #1
        bne co_outer
        mov r0, r6
        swi 3
        swi 5
        mov r0, #0
        swi 0

compress_run:
        push {r4, r5, r6, r7, lr}
        ldr r0, =htab
        ldr r1, =HSIZE
        mvn r2, #0
cr_clr:
        str r2, [r0], #4
        subs r1, r1, #1
        bne cr_clr
        mov r0, #0              ; checksum
        ldr r1, =55555          ; lcg
        mov r2, #0              ; ent
        mov r3, #256            ; next code
        ldr r5, =NIN
cr_loop:
        ldr r6, =1664525
        mul r4, r1, r6
        add r1, r4, #97
        mov r4, r1, lsr #16
        and r4, r4, #0xFF
        add r6, r2, r4, lsl #12 ; fcode
        eor r7, r2, r4, lsl #4
        ldr r12, =HSIZE-1
        and r7, r7, r12
cr_probe:
        ldr r11, =htab
        ldr r10, [r11, r7, lsl #2]
        cmn r10, #1
        beq cr_insert
        cmp r10, r6
        beq cr_found
        add r7, r7, #1
        and r7, r7, r12
        b cr_probe
cr_found:
        ldr r11, =codetab
        ldr r2, [r11, r7, lsl #2]
        b cr_next
cr_insert:
        ldr r11, =htab
        str r6, [r11, r7, lsl #2]
        ldr r11, =codetab
        str r3, [r11, r7, lsl #2]
        add r3, r3, #1
        mov r2, r4
cr_next:
        eor r0, r2, r0, ror #3
        subs r5, r5, #1
        bne cr_loop
        pop {r4, r5, r6, r7, lr}
        mov pc, lr

        .ltorg
        .align 2
htab:    .space 16384
codetab: .space 16384
)";
  return with_scale(src, scale);
}

// ---------------------------------------------------------------------------
// g721 — ADPCM predictor arithmetic: multiply-accumulate + leaky LMS update.
// ---------------------------------------------------------------------------
std::string g721_source(unsigned scale) {
  static const char* src = R"(
        .equ NSAMP, 2048
_start:
        ldr sp, =0xF0000
        bl g7_init
        ldr r7, =@SCALE@
        mov r6, #0
g7_outer:
        bl g721_run
        eor r6, r6, r0
        subs r7, r7, #1
        bne g7_outer
        mov r0, r6
        swi 3
        swi 5
        mov r0, #0
        swi 0

g7_init:
        ldr r0, =state
        mov r1, #16
        mov r2, #0
g7i:
        str r2, [r0], #4
        subs r1, r1, #1
        bne g7i
        mov pc, lr

g721_run:
        push {r4, r5, r6, r7, lr}
        mov r0, #0              ; checksum
        ldr r1, =31415          ; lcg
        ldr r5, =NSAMP
g7_loop:
        ldr r4, =1664525
        mul r6, r1, r4
        add r1, r6, #89
        mov r6, r1, lsl #17
        mov r6, r6, asr #17     ; 15-bit signed sample
        ldr r8, =state          ; dq[0..5], then b[0..5] at +32
        mov r7, #0              ; sez accumulator
        mov r9, #6
g7_mac:
        ldr r10, [r8]
        ldr r11, [r8, #32]
        mul r12, r10, r11
        add r7, r7, r12, asr #14
        add r8, r8, #4
        subs r9, r9, #1
        bne g7_mac
        sub r9, r6, r7          ; d = sample - sez
        mov r10, r9, asr #5     ; quantize
        cmp r10, #7
        movgt r10, #7
        cmn r10, #8
        mvnlt r10, #7
        mov r11, r10, lsl #5    ; dq_new
        ldr r8, =state
        mov r9, #6
g7_upd:
        ldr r12, [r8]
        mul r4, r12, r10
        ldr r12, [r8, #32]
        sub r12, r12, r12, asr #8
        add r12, r12, r4, asr #10
        str r12, [r8, #32]
        add r8, r8, #4
        subs r9, r9, #1
        bne g7_upd
        ldr r8, =state
        add r8, r8, #16         ; &dq[4]
        mov r9, #5
g7_sh:
        ldr r12, [r8]
        str r12, [r8, #4]
        sub r8, r8, #4
        subs r9, r9, #1
        bne g7_sh
        ldr r8, =state
        str r11, [r8]
        and r10, r10, #15
        eor r0, r10, r0, ror #5
        subs r5, r5, #1
        bne g7_loop
        pop {r4, r5, r6, r7, lr}
        mov pc, lr

        .ltorg
        .align 2
state:  .space 64
)";
  return with_scale(src, scale);
}

// ---------------------------------------------------------------------------
// go — 19x19 board scanning with data-dependent branches.
// ---------------------------------------------------------------------------
std::string go_source(unsigned scale) {
  static const char* src = R"(
        .equ BAREA, 361
_start:
        ldr sp, =0xF0000
        bl board_init
        ldr r7, =@SCALE@
        mov r6, #0
go_outer:
        bl board_eval
        eor r6, r6, r0
        bl board_mutate
        subs r7, r7, #1
        bne go_outer
        mov r0, r6
        swi 3
        swi 5
        mov r0, #0
        swi 0

board_init:
        push {r4, lr}
        ldr r0, =board
        ldr r1, =BAREA
        ldr r2, =777
        ldr r3, =1103515245
bo_loop:
        mul r4, r2, r3
        add r2, r4, #13
        mov r4, r2, lsr #20
        and r4, r4, #3
        cmp r4, #3
        moveq r4, #0
        strb r4, [r0], #1
        subs r1, r1, #1
        bne bo_loop
        pop {r4, lr}
        mov pc, lr

board_eval:
        push {r4, r5, r6, r7, lr}
        mov r0, #0
        ldr r5, =board
        mov r8, #0              ; row
be_row:
        mov r9, #0              ; col
be_col:
        ldrb r6, [r5]
        cmp r6, #0
        beq be_next
        mov r7, #0              ; same-color neighbour count
        cmp r9, #0
        beq be_noleft
        ldrb r10, [r5, #-1]
        cmp r10, r6
        addeq r7, r7, #1
be_noleft:
        cmp r9, #18
        beq be_noright
        ldrb r10, [r5, #1]
        cmp r10, r6
        addeq r7, r7, #1
be_noright:
        cmp r8, #0
        beq be_noup
        ldrb r10, [r5, #-19]
        cmp r10, r6
        addeq r7, r7, #1
be_noup:
        cmp r8, #18
        beq be_nodown
        ldrb r10, [r5, #19]
        cmp r10, r6
        addeq r7, r7, #1
be_nodown:
        cmp r7, #0
        moveq r10, #5
        cmp r7, #1
        moveq r10, #3
        cmp r7, #2
        moveq r10, #2
        cmp r7, #3
        moveq r10, #1
        cmp r7, #4
        moveq r10, #0
        cmp r6, #1
        addeq r0, r0, r10
        subne r0, r0, r10
be_next:
        add r5, r5, #1
        add r9, r9, #1
        cmp r9, #19
        blt be_col
        add r8, r8, #1
        cmp r8, #19
        blt be_row
        pop {r4, r5, r6, r7, lr}
        mov pc, lr

board_mutate:
        push {r4, lr}
        ldr r0, =mstate
        ldr r1, [r0]
        ldr r2, =1664525
        mul r3, r1, r2
        add r1, r3, #71
        str r1, [r0]
        mov r3, r1, lsr #7
        mov r3, r3, lsl #23
        mov r3, r3, lsr #23     ; low 9 bits: 0..511
        ldr r4, =361
        cmp r3, r4
        subge r3, r3, r4
        and r2, r1, #1
        add r2, r2, #1
        ldr r4, =board
        strb r2, [r4, r3]
        pop {r4, lr}
        mov pc, lr

        .ltorg
        .align 2
mstate: .word 424242
board:  .space 361
)";
  return with_scale(src, scale);
}

const std::vector<Workload> kWorkloads = {
    {"adpcm", "IMA ADPCM encoder (MediaBench)", 15, 1, adpcm_source},
    {"blowfish", "Feistel block cipher (MiBench)", 15, 1, blowfish_source},
    {"compress", "LZW hash-probing core (SPEC95)", 12, 1, compress_source},
    {"crc", "CRC-32 over a buffer (MiBench)", 40, 2, crc_source},
    {"g721", "G.721 predictor arithmetic (MediaBench)", 6, 1, g721_source},
    {"go", "Board-scanning game AI (SPEC95)", 150, 5, go_source},
};

}  // namespace

const std::vector<Workload>& all() { return kWorkloads; }

const Workload* find(const std::string& name) {
  for (const Workload& w : kWorkloads)
    if (w.name == name) return &w;
  return nullptr;
}

sys::Program build(const Workload& w, unsigned scale) {
  if (scale == 0) scale = w.default_scale;
  arm::AssemblyResult res = arm::assemble(w.source(scale), w.name);
  return std::move(res.program);
}

}  // namespace rcpn::workloads
