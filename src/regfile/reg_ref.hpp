// RegRef and ConstOperand: the top level of the paper's register model.
//
// A RegRef is the per-instruction view of a register — the "pipeline latch
// that carries instruction data in real hardware". It holds an internal copy
// of the value so an instruction can read sources early and write its
// destination late, which is almost equivalent to renaming the register for
// each individual instruction (paper §3.1).
//
// A ConstOperand binds a literal (immediate field, or a decode-time-known
// expression such as pc+8) to the same interface, so instruction behaviour
// descriptions are uniform over register and constant symbols.
#pragma once

#include "regfile/operand.hpp"
#include "regfile/register_file.hpp"

namespace rcpn::regfile {

class RegRef final : public Operand {
 public:
  RegRef() = default;

  /// Bind to register `r` of `file`. `owner_place` points at the owning
  /// instruction token's current-place field; it is how can_read_in(s)
  /// locates the writer's pipeline state without a dependency on the core
  /// token type.
  void bind(RegisterFile* file, RegisterId r, const PlaceId* owner_place);

  /// Prepare for a fresh dynamic instance of the owning instruction
  /// (decode-cache reuse). Any reservation must already be resolved.
  void reset_for_reuse();

  bool bound() const { return file_ != nullptr; }
  RegisterId register_id() const { return reg_; }
  CellId cell() const { return cell_; }
  bool reserved() const { return reserved_; }
  PlaceId owner_place() const { return owner_place_ ? *owner_place_ : kNoPlace; }

  // -- Operand interface ------------------------------------------------------
  bool can_read() const override;
  bool can_read_in(PlaceId s) const override;
  void read() override;
  void read_in(PlaceId s) override;
  bool can_write() const override;
  void reserve_write() override;
  void writeback() override;
  void release() override;
  Word peek() const override { return file_->read_cell(cell_); }
  Word peek_in(PlaceId s) const override;

  // -- renaming support (paper §3.1: "the implementation of these interfaces
  //    may vary based on architectural features such as register renaming").
  //    A Tomasulo-style reader captures its producer at issue (the Qj/Qk tag)
  //    and later reads that producer's value directly, independent of any
  //    younger writers of the same architectural register.
  /// Capture the newest in-flight writer; false if the register is current.
  bool capture_writer() {
    writer_tag_ = file_->last_writer(cell_);
    return writer_tag_ != nullptr;
  }
  bool captured() const { return writer_tag_ != nullptr; }
  /// Has the captured producer computed its result yet?
  bool captured_ready() const {
    return writer_tag_ != nullptr && writer_tag_->value_ready();
  }
  /// Read the captured producer's value (requires captured_ready()).
  void read_captured() {
    value_ = writer_tag_->value();
    value_ready_ = true;
    writer_tag_ = nullptr;
  }

  // -- checkpoint support (src/ckpt/) ----------------------------------------
  //    Snapshot restore rebuilds the full dynamic state of a RegRef whose
  //    owning instruction was re-materialized: the latch value, the live
  //    reservation and the captured producer tag. The writer *list* of the
  //    cell is restored separately through RegisterFile::push_writer, so this
  //    setter only flips the local flag.
  std::uint32_t reserve_seq() const { return reserve_seq_; }
  RegRef* writer_tag() const { return writer_tag_; }
  void ckpt_restore(Word value, bool value_ready, bool reserved,
                    std::uint32_t reserve_seq) {
    value_ = value;
    value_ready_ = value_ready;
    reserved_ = reserved;
    reserve_seq_ = reserve_seq;
  }
  void ckpt_set_writer_tag(RegRef* w) { writer_tag_ = w; }

 private:
  /// Newest in-flight writer of our cell that currently sits in place `s`
  /// with a ready value; nullptr if none.
  RegRef* writer_in(PlaceId s) const;

  RegisterFile* file_ = nullptr;
  const PlaceId* owner_place_ = nullptr;
  RegRef* writer_tag_ = nullptr;  // captured producer (renaming)
  std::uint32_t reserve_seq_ = 0;
  RegisterId reg_ = 0;
  CellId cell_ = 0;
  bool reserved_ = false;
};

class ConstOperand final : public Operand {
 public:
  ConstOperand() { value_ready_ = true; }
  explicit ConstOperand(Word v) {
    value_ = v;
    value_ready_ = true;
  }

  /// Constants are always readable and writes to them are no-ops with
  /// always-true guards, exactly as the paper prescribes for Const objects.
  bool can_read() const override { return true; }
  bool can_read_in(PlaceId) const override { return false; }
  void read() override {}
  void read_in(PlaceId) override {}
  bool can_write() const override { return true; }
  void reserve_write() override {}
  void writeback() override {}
  void release() override { value_ready_ = true; }
  Word peek() const override { return value_; }
  Word peek_in(PlaceId) const override { return value_; }
};

}  // namespace rcpn::regfile
