#include "regfile/register_file.hpp"

#include <algorithm>

namespace rcpn::regfile {

RegisterFile::RegisterFile(unsigned num_cells, WritePolicy policy)
    : cells_(num_cells), policy_(policy) {}

RegisterId RegisterFile::add_register(std::string name, CellId cell) {
  assert(cell < cells_.size());
  regs_.push_back(Register{std::move(name), cell});
  return static_cast<RegisterId>(regs_.size() - 1);
}

void RegisterFile::add_identity_registers(unsigned n, const std::string& prefix) {
  assert(n <= cells_.size());
  for (unsigned i = 0; i < n; ++i)
    add_register(prefix + std::to_string(i), static_cast<CellId>(i));
}

RegRef* RegisterFile::last_writer(CellId c) const {
  const Cell& cell = cells_[c];
  return cell.num_writers == 0 ? nullptr : cell.writers[cell.num_writers - 1];
}

void RegisterFile::push_writer(CellId c, RegRef* w) {
  Cell& cell = cells_[c];
  assert(cell.num_writers < kMaxWriters && "writer stack overflow");
  cell.writers[cell.num_writers++] = w;
}

void RegisterFile::remove_writer(CellId c, RegRef* w) {
  Cell& cell = cells_[c];
  for (unsigned i = 0; i < cell.num_writers; ++i) {
    if (cell.writers[i] == w) {
      // Preserve reservation (age) order of the remaining writers.
      for (unsigned j = i + 1; j < cell.num_writers; ++j)
        cell.writers[j - 1] = cell.writers[j];
      --cell.num_writers;
      return;
    }
  }
  assert(false && "remove_writer: not a registered writer");
}

void RegisterFile::clear_writers() {
  for (Cell& cell : cells_) {
    cell.num_writers = 0;
    cell.reserve_seq = 0;
    cell.committed_seq = 0;
  }
}

void RegisterFile::reset() {
  clear_writers();
  for (Cell& cell : cells_) cell.data = 0;
}

}  // namespace rcpn::regfile
