#include "regfile/reg_ref.hpp"

namespace rcpn::regfile {

void RegRef::bind(RegisterFile* file, RegisterId r, const PlaceId* owner_place) {
  assert(!reserved_ && "rebinding a RegRef with a live reservation");
  file_ = file;
  reg_ = r;
  cell_ = file->reg(r).cell;
  owner_place_ = owner_place;
  value_ = 0;
  value_ready_ = false;
}

void RegRef::reset_for_reuse() {
  assert(!reserved_ && "reusing a RegRef with a live reservation");
  value_ready_ = false;
}

bool RegRef::can_read() const {
  // Readable when the architectural value is current: no in-flight writer.
  return !file_->has_writer(cell_);
}

RegRef* RegRef::writer_in(PlaceId s) const {
  // Newest-first: with multiple in-flight writers the most recent one holds
  // the value this (younger) reader must see.
  const unsigned n = file_->num_writers(cell_);
  for (unsigned i = n; i > 0; --i) {
    RegRef* w = file_->writer(cell_, i - 1);
    if (w->owner_place() == s && w->value_ready_) return w;
  }
  return nullptr;
}

bool RegRef::can_read_in(PlaceId s) const {
  // Only the *newest* writer may legally source a forward; if the writer in
  // state s is stale (a newer reservation exists), forwarding from it would
  // feed an old value.
  RegRef* w = writer_in(s);
  return w != nullptr && w == file_->last_writer(cell_);
}

void RegRef::read() {
  value_ = file_->read_cell(cell_);
  value_ready_ = true;
}

void RegRef::read_in(PlaceId s) {
  RegRef* w = writer_in(s);
  assert(w && "read_in without matching can_read_in guard");
  value_ = w->value_;
  value_ready_ = true;
}

Word RegRef::peek_in(PlaceId s) const {
  RegRef* w = writer_in(s);
  assert(w && "peek_in without matching can_read_in guard");
  return w->value_;
}

bool RegRef::can_write() const {
  if (file_->policy() == WritePolicy::single_writer) return !file_->has_writer(cell_);
  return file_->num_writers(cell_) < 4;  // bounded by realistic pipeline depth
}

void RegRef::reserve_write() {
  assert(!reserved_ && "double reserve_write");
  file_->push_writer(cell_, this);
  reserve_seq_ = file_->next_reserve_seq(cell_);
  reserved_ = true;
  value_ready_ = false;
}

void RegRef::writeback() {
  assert(reserved_ && "writeback without reservation");
  // Out-of-order completion: an older writer finishing after a newer one must
  // not clobber the newer architectural value.
  if (reserve_seq_ >= file_->committed_seq(cell_)) {
    file_->write_cell(cell_, value_);
    file_->set_committed_seq(cell_, reserve_seq_);
  }
  file_->remove_writer(cell_, this);
  reserved_ = false;
}

void RegRef::release() {
  if (reserved_) {
    file_->remove_writer(cell_, this);
    reserved_ = false;
  }
  value_ready_ = false;
  writer_tag_ = nullptr;
}

}  // namespace rcpn::regfile
