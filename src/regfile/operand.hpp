// The fixed operand interface of RCPN's data-hazard mechanism (paper §3.1).
//
// Instruction behaviour is written against this interface only; whether an
// operand symbol was bound to a register (RegRef) or to a literal (Const) at
// decode time is invisible to the sub-net describing the instruction. Guard
// conditions use the Boolean half (can_read / can_read_in / can_write) and
// transition actions use the effectful half (read / read_in / reserve_write /
// writeback) — the pairing rules from the paper:
//
//     action uses read()          => guard must check can_read()
//     action uses read_in(s)      => guard must check can_read_in(s)
//     action uses reserve_write() => guard must check can_write()
#pragma once

#include <cstdint>

namespace rcpn::regfile {

using Word = std::uint32_t;

/// Identifier of an RCPN place ("state" of an instruction). Mirrors
/// core::PlaceId without creating a dependency from regfile onto core.
using PlaceId = std::int16_t;
constexpr PlaceId kNoPlace = -1;

class Operand {
 public:
  virtual ~Operand() = default;

  /// Internal (pipeline-latch) storage. Non-virtual: the value lives in the
  /// base object so the hot compute path never pays for dispatch.
  Word value() const { return value_; }
  void set_value(Word v) {
    value_ = v;
    value_ready_ = true;
  }
  bool value_ready() const { return value_ready_; }

  /// True if the underlying register holds a committed value (no in-flight
  /// writer), so read() is safe.
  virtual bool can_read() const = 0;

  /// True if the in-flight writer of the underlying register currently sits
  /// in place `s` and has already produced its result — i.e. the value can be
  /// forwarded from the feedback/bypass path out of stage `s`.
  virtual bool can_read_in(PlaceId s) const = 0;

  /// Copy the register value into this operand's internal storage.
  virtual void read() = 0;

  /// Forward: copy the internal value of the writer sitting in place `s`.
  virtual void read_in(PlaceId s) = 0;

  /// True if a write reservation may be taken (WAW/WAR hazard check).
  virtual bool can_write() const = 0;

  /// Register this operand (and its owning instruction) as the writer.
  virtual void reserve_write() = 0;

  /// Commit the internal value to the register and drop the reservation.
  virtual void writeback() = 0;

  /// Drop any reservation without committing (squash/flush path).
  virtual void release() = 0;

  /// Non-consuming reads for guard predicates (e.g. evaluating a condition
  /// code before deciding whether the instruction needs its other operands).
  /// peek() requires can_read(); peek_in(s) requires can_read_in(s).
  virtual Word peek() const = 0;
  virtual Word peek_in(PlaceId s) const = 0;

 protected:
  Word value_ = 0;
  bool value_ready_ = false;
};

}  // namespace rcpn::regfile
