// Register file: the bottom level of the paper's three-level register model
// (Figure 3). Owns the actual storage cells, tracks the in-flight writers of
// every cell, and defines the Register objects that map architectural names
// onto (possibly shared, i.e. overlapping) storage.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "regfile/operand.hpp"

namespace rcpn::regfile {

class RegRef;

/// How write reservations interact:
///  * single_writer  — can_write() is false while any writer is pending
///    (scoreboard-style: WAW and WAR stall at issue).
///  * multi_writer   — multiple reservations may be in flight; commit order
///    is repaired with per-cell sequence numbers so that an older writer
///    completing *after* a newer one (out-of-order completion) does not
///    clobber the newer value.
enum class WritePolicy : std::uint8_t { single_writer, multi_writer };

using RegisterId = std::uint16_t;
using CellId = std::uint16_t;

/// Architectural register: a named view onto one storage cell. Overlapping
/// registers (ARM banked registers, SPARC windows) are distinct Register
/// entries sharing a cell.
struct Register {
  std::string name;
  CellId cell = 0;
};

class RegisterFile {
 public:
  /// Creates `num_cells` zero-initialised storage cells.
  RegisterFile(unsigned num_cells, WritePolicy policy);

  /// Define a named register over `cell`. Returns its id.
  RegisterId add_register(std::string name, CellId cell);

  /// Convenience: define registers r0..r{n-1} mapped 1:1 onto cells 0..n-1.
  void add_identity_registers(unsigned n, const std::string& prefix = "r");

  const Register& reg(RegisterId id) const { return regs_[id]; }
  unsigned num_registers() const { return static_cast<unsigned>(regs_.size()); }
  unsigned num_cells() const { return static_cast<unsigned>(cells_.size()); }
  WritePolicy policy() const { return policy_; }

  Word read_cell(CellId c) const { return cells_[c].data; }
  void write_cell(CellId c, Word v) { cells_[c].data = v; }

  // -- writer tracking (used by RegRef) --------------------------------------
  bool has_writer(CellId c) const { return cells_[c].num_writers != 0; }
  unsigned num_writers(CellId c) const { return cells_[c].num_writers; }
  RegRef* writer(CellId c, unsigned i) const { return cells_[c].writers[i]; }
  /// Newest (most recently reserved) writer, or nullptr.
  RegRef* last_writer(CellId c) const;
  void push_writer(CellId c, RegRef* w);
  void remove_writer(CellId c, RegRef* w);
  /// Commit sequencing for multi_writer: returns the reservation sequence.
  std::uint32_t next_reserve_seq(CellId c) { return ++cells_[c].reserve_seq; }
  /// Checkpoint support (src/ckpt/): the reservation-sequence counter is
  /// dynamic state — restore sets it back verbatim so sequence numbers issued
  /// after a resume match the original run's.
  std::uint32_t reserve_seq(CellId c) const { return cells_[c].reserve_seq; }
  void set_reserve_seq(CellId c, std::uint32_t s) { cells_[c].reserve_seq = s; }
  std::uint32_t committed_seq(CellId c) const { return cells_[c].committed_seq; }
  void set_committed_seq(CellId c, std::uint32_t s) { cells_[c].committed_seq = s; }

  /// Drop all reservations (e.g. on machine reset between runs).
  void clear_writers();

  /// Reset storage and reservations.
  void reset();

 private:
  // A handful of writers per cell is the realistic maximum (pipeline depth);
  // fixed inline storage keeps the hazard checks allocation-free (Per.14).
  static constexpr unsigned kMaxWriters = 8;

  struct Cell {
    Word data = 0;
    std::uint32_t reserve_seq = 0;
    std::uint32_t committed_seq = 0;
    std::uint8_t num_writers = 0;
    RegRef* writers[kMaxWriters] = {};
  };

  std::vector<Cell> cells_;
  std::vector<Register> regs_;
  WritePolicy policy_;
};

}  // namespace rcpn::regfile
