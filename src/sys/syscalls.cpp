#include "sys/syscalls.hpp"

#include <cstdio>

#include "util/logging.hpp"

namespace rcpn::sys {

void SyscallHandler::emit(const std::string& s) {
  output_ += s;
  if (echo_) std::fputs(s.c_str(), stdout);
}

SyscallResult SyscallHandler::handle(const SyscallArgs& args, mem::Memory& memory) {
  ++calls_;
  SyscallResult res;
  switch (args.imm) {
    case kSwiExit:
      exited_ = true;
      exit_code_ = static_cast<int>(args.r0);
      res.exited = true;
      break;
    case kSwiPutChar:
      emit(std::string(1, static_cast<char>(args.r0 & 0xff)));
      break;
    case kSwiPutUint: {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%u", args.r0);
      emit(buf);
      break;
    }
    case kSwiPutHex: {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%08x", args.r0);
      emit(buf);
      break;
    }
    case kSwiWrite: {
      std::string s;
      s.reserve(args.r1);
      for (std::uint32_t i = 0; i < args.r1; ++i)
        s.push_back(static_cast<char>(memory.read8(args.r0 + i)));
      emit(s);
      break;
    }
    case kSwiNewline:
      emit("\n");
      break;
    default:
      util::log_line(util::LogLevel::warn,
                     "unknown SWI " + std::to_string(args.imm) + " ignored");
      break;
  }
  return res;
}

void SyscallHandler::reset() {
  output_.clear();
  exit_code_ = 0;
  exited_ = false;
  calls_ = 0;
}

}  // namespace rcpn::sys
