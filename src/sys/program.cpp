#include "sys/program.hpp"

namespace rcpn::sys {

std::size_t Program::image_size() const {
  std::size_t n = 0;
  for (const Segment& s : segments) n += s.bytes.size();
  return n;
}

void Program::load_into(mem::Memory& memory) const {
  for (const Segment& s : segments)
    memory.load(s.addr, {s.bytes.data(), s.bytes.size()});
}

}  // namespace rcpn::sys
