// SWI (software interrupt) emulation.
//
// The paper's benchmarks "use very few simple system calls (mainly for IO)
// that should be translated into host operating system calls in the
// simulator"; this is that translation layer, shared by the functional ISS,
// the RCPN-generated simulators and the SimpleScalar-style baseline so all
// simulators observe identical system behaviour. Output is captured in a
// buffer (tests compare it across simulators) and optionally echoed.
#pragma once

#include <cstdint>
#include <string>

#include "mem/memory.hpp"

namespace rcpn::sys {

/// SWI immediate values understood by the emulator.
enum Swi : std::uint32_t {
  kSwiExit = 0,      // r0 = exit code
  kSwiPutChar = 1,   // r0 = character
  kSwiPutUint = 2,   // r0 = value, printed in decimal
  kSwiPutHex = 3,    // r0 = value, printed as 8-digit hex
  kSwiWrite = 4,     // r0 = address, r1 = length in bytes
  kSwiNewline = 5,
};

struct SyscallArgs {
  std::uint32_t imm = 0;  // SWI immediate
  std::uint32_t r0 = 0;
  std::uint32_t r1 = 0;
};

struct SyscallResult {
  bool exited = false;
  bool writes_r0 = false;
  std::uint32_t r0_out = 0;
};

class SyscallHandler {
 public:
  SyscallResult handle(const SyscallArgs& args, mem::Memory& memory);

  const std::string& output() const { return output_; }
  int exit_code() const { return exit_code_; }
  bool exited() const { return exited_; }
  std::uint64_t calls() const { return calls_; }

  /// Echo program output to stdout as well (examples set this).
  void set_echo(bool v) { echo_ = v; }

  void reset();

  /// Checkpoint support (src/ckpt/): the captured output buffer and the
  /// exit/call counters are run state — a restored run appends to the
  /// original prefix, so end-of-run output is byte-identical. `echo_` is
  /// host-side configuration and is deliberately not restored.
  void ckpt_restore(std::string output, int exit_code, bool exited,
                    std::uint64_t calls) {
    output_ = std::move(output);
    exit_code_ = exit_code;
    exited_ = exited;
    calls_ = calls;
  }

 private:
  void emit(const std::string& s);

  std::string output_;
  int exit_code_ = 0;
  bool exited_ = false;
  bool echo_ = false;
  std::uint64_t calls_ = 0;
};

}  // namespace rcpn::sys
