// Program image: the output of the assembler and the input of every
// simulator (functional ISS, RCPN models, baseline). A flat list of
// (address, bytes) segments plus the entry point and initial stack pointer —
// the moral equivalent of the stripped ELF images the paper loads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mem/memory.hpp"

namespace rcpn::sys {

struct Segment {
  std::uint32_t addr = 0;
  std::vector<std::uint8_t> bytes;
};

struct Program {
  std::string name;
  std::uint32_t entry = 0x8000;
  std::uint32_t initial_sp = 0x0010'0000;
  std::vector<Segment> segments;

  void add_segment(std::uint32_t addr, std::vector<std::uint8_t> bytes) {
    segments.push_back(Segment{addr, std::move(bytes)});
  }

  /// Total image size in bytes.
  std::size_t image_size() const;

  /// Copy all segments into `memory`.
  void load_into(mem::Memory& memory) const;
};

}  // namespace rcpn::sys
