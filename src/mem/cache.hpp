// Timing-only set-associative cache with true-LRU replacement.
//
// access() updates the tag state and returns the latency in cycles — the
// value RCPN transitions assign to token delays (the paper's
// `t.delay = mem.delay(addr)` in Fig 5's LoadStore sub-net).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rcpn::mem {

struct CacheConfig {
  std::uint32_t size_bytes = 16 * 1024;
  std::uint32_t line_bytes = 32;
  std::uint32_t assoc = 32;  // StrongArm/XScale caches are 32-way
  std::uint32_t hit_latency = 1;
  std::uint32_t miss_penalty = 30;  // added to hit_latency on miss
  bool write_allocate = true;
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;
  double hit_ratio() const {
    return accesses == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(accesses);
  }
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config, std::string name = "cache");

  /// Look up `addr`; updates LRU/dirty state. Returns latency in cycles.
  /// Consecutive accesses to the same line take a last-block fast path
  /// (sequential fetch streams hit it ~7 times out of 8 with 32 B lines).
  std::uint32_t access(std::uint32_t addr, bool is_write) {
    if (last_line_ != nullptr && (addr >> offset_bits_) == last_block_) {
      ++stats_.accesses;
      ++stats_.hits;
      last_line_->lru = ++lru_clock_;
      if (is_write) last_line_->dirty = true;
      return config_.hit_latency;
    }
    return access_slow(addr, is_write);
  }

  /// Generic access path without the last-block specialization — the shape a
  /// conventional framework simulator (e.g. sim-outorder's cache_access)
  /// pays on every reference. Used by the baseline for fidelity.
  std::uint32_t access_generic(std::uint32_t addr, bool is_write) {
    return access_slow(addr, is_write);
  }

  /// Non-updating probe (tests).
  bool contains(std::uint32_t addr) const;

  const CacheConfig& config() const { return config_; }
  const CacheStats& stats() const { return stats_; }
  const std::string& name() const { return name_; }
  std::uint32_t num_sets() const { return num_sets_; }

  void reset();

  // -- checkpoint support (src/ckpt/) -----------------------------------------
  // Tag/LRU/dirty state is timing state: a restored run replays the same
  // hit/miss latencies. The last-block filter is NOT serialized — it is a
  // pure lookup shortcut whose slow-path fallback updates LRU and stats
  // identically, so restore just clears it.
  struct CkptLine {
    std::uint32_t tag = 0;
    std::uint64_t lru = 0;
    bool valid = false;
    bool dirty = false;
  };
  std::size_t num_lines() const { return lines_.size(); }
  CkptLine ckpt_line(std::size_t i) const {
    const Line& l = lines_[i];
    return CkptLine{l.tag, l.lru, l.valid, l.dirty};
  }
  void ckpt_set_line(std::size_t i, const CkptLine& l) {
    lines_[i] = Line{l.tag, l.lru, l.valid, l.dirty};
  }
  std::uint64_t lru_clock() const { return lru_clock_; }
  void ckpt_restore_meta(std::uint64_t lru_clock, const CacheStats& stats) {
    lru_clock_ = lru_clock;
    stats_ = stats;
    last_block_ = 0xffff'ffff;
    last_line_ = nullptr;
  }

 private:
  struct Line {
    std::uint32_t tag = 0;
    std::uint64_t lru = 0;  // higher = more recently used
    bool valid = false;
    bool dirty = false;
  };

  std::uint32_t set_index(std::uint32_t addr) const;
  std::uint32_t tag_of(std::uint32_t addr) const;
  std::uint32_t access_slow(std::uint32_t addr, bool is_write);

  CacheConfig config_;
  std::string name_;
  std::uint32_t num_sets_;
  unsigned offset_bits_;
  unsigned index_bits_;
  std::vector<Line> lines_;  // num_sets_ * assoc, row-major by set
  std::uint64_t lru_clock_ = 0;
  CacheStats stats_;
  // Last-block filter (resident line of the most recent access).
  std::uint32_t last_block_ = 0xffff'ffff;
  Line* last_line_ = nullptr;
};

}  // namespace rcpn::mem
