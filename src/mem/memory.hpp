// Sparse paged byte-addressable memory (functional storage).
//
// Caches in this codebase are timing-only (they return delays and keep
// hit/miss state); the architectural bytes always live here. This mirrors
// the common cycle-accurate-simulator split and matches the paper's use of a
// `mem` component whose delay() feeds token delays (Fig 5, transition M).
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <unordered_map>

namespace rcpn::mem {

class Memory {
 public:
  static constexpr unsigned kPageBits = 12;  // 4 KiB pages
  static constexpr std::uint32_t kPageSize = 1u << kPageBits;

  std::uint8_t read8(std::uint32_t addr) const;
  std::uint16_t read16(std::uint32_t addr) const;
  /// Word accesses are forced to natural alignment (ARM semantics: the low
  /// address bits are ignored for the storage access).
  std::uint32_t read32(std::uint32_t addr) const;

  void write8(std::uint32_t addr, std::uint8_t v);
  void write16(std::uint32_t addr, std::uint16_t v);
  void write32(std::uint32_t addr, std::uint32_t v);

  void load(std::uint32_t addr, std::span<const std::uint8_t> bytes);

  /// Number of resident pages (tests / footprint reporting).
  std::size_t resident_pages() const { return pages_.size(); }

  void clear() {
    pages_.clear();
    last_page_id_ = 0xffff'ffff;
    last_page_ = nullptr;
  }

  // -- checkpoint support (src/ckpt/) -----------------------------------------
  // The snapshot layer dumps resident pages (in sorted page-id order — the
  // map itself is unordered) and restores them as whole-page images. The
  // one-entry translation cache is a pure shortcut and is just invalidated.
  const std::unordered_map<std::uint32_t, std::unique_ptr<std::uint8_t[]>>& pages()
      const {
    return pages_;
  }
  void ckpt_set_page(std::uint32_t page_id, const std::uint8_t* bytes) {
    auto& slot = pages_[page_id];
    if (!slot) slot = std::make_unique<std::uint8_t[]>(kPageSize);
    std::memcpy(slot.get(), bytes, kPageSize);
    last_page_id_ = 0xffff'ffff;
    last_page_ = nullptr;
  }

 private:
  const std::uint8_t* page_for_read(std::uint32_t addr) const;
  std::uint8_t* page_for_write(std::uint32_t addr);

  std::unordered_map<std::uint32_t, std::unique_ptr<std::uint8_t[]>> pages_;
  // One-entry translation cache: accesses are strongly page-local (fetch
  // streams, stack, table walks), so most lookups skip the hash table.
  mutable std::uint32_t last_page_id_ = 0xffff'ffff;
  mutable std::uint8_t* last_page_ = nullptr;
};

}  // namespace rcpn::mem
