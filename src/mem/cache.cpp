#include "mem/cache.hpp"

#include <cassert>

#include "util/bits.hpp"

namespace rcpn::mem {

Cache::Cache(const CacheConfig& config, std::string name)
    : config_(config), name_(std::move(name)) {
  assert(util::is_pow2(config_.line_bytes) && util::is_pow2(config_.size_bytes));
  const std::uint32_t num_lines = config_.size_bytes / config_.line_bytes;
  assert(config_.assoc >= 1 && config_.assoc <= num_lines);
  num_sets_ = num_lines / config_.assoc;
  assert(util::is_pow2(num_sets_));
  offset_bits_ = util::log2_exact(config_.line_bytes);
  index_bits_ = util::log2_exact(num_sets_);
  lines_.assign(static_cast<std::size_t>(num_sets_) * config_.assoc, Line{});
}

std::uint32_t Cache::set_index(std::uint32_t addr) const {
  return (addr >> offset_bits_) & (num_sets_ - 1);
}

std::uint32_t Cache::tag_of(std::uint32_t addr) const {
  return addr >> (offset_bits_ + index_bits_);
}

std::uint32_t Cache::access_slow(std::uint32_t addr, bool is_write) {
  ++stats_.accesses;
  ++lru_clock_;
  const std::uint32_t set = set_index(addr);
  const std::uint32_t tag = tag_of(addr);
  Line* base = &lines_[static_cast<std::size_t>(set) * config_.assoc];

  for (std::uint32_t w = 0; w < config_.assoc; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      ++stats_.hits;
      line.lru = lru_clock_;
      if (is_write) line.dirty = true;
      last_block_ = addr >> offset_bits_;
      last_line_ = &line;
      return config_.hit_latency;
    }
  }

  ++stats_.misses;
  if (is_write && !config_.write_allocate) {
    // Write-around: no fill; pay the memory latency.
    return config_.hit_latency + config_.miss_penalty;
  }

  // Fill: evict LRU way.
  Line* victim = base;
  for (std::uint32_t w = 1; w < config_.assoc; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].lru < victim->lru) victim = &base[w];
  }
  if (victim->valid) {
    ++stats_.evictions;
    if (victim->dirty) ++stats_.writebacks;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = lru_clock_;
  victim->dirty = is_write;
  last_block_ = addr >> offset_bits_;
  last_line_ = victim;
  return config_.hit_latency + config_.miss_penalty;
}

bool Cache::contains(std::uint32_t addr) const {
  const std::uint32_t set = set_index(addr);
  const std::uint32_t tag = tag_of(addr);
  const Line* base = &lines_[static_cast<std::size_t>(set) * config_.assoc];
  for (std::uint32_t w = 0; w < config_.assoc; ++w)
    if (base[w].valid && base[w].tag == tag) return true;
  return false;
}

void Cache::reset() {
  for (Line& line : lines_) line = Line{};
  lru_clock_ = 0;
  stats_ = CacheStats{};
  last_block_ = 0xffff'ffff;
  last_line_ = nullptr;
}

}  // namespace rcpn::mem
