// MemorySystem: functional memory + timing caches bundled behind the two
// calls pipeline models need — fetch_delay(pc) for the fetch transition and
// data_delay(addr) for load/store transitions (the `mem` component referenced
// directly by RCPN transitions in the paper).
#pragma once

#include <cstdint>

#include "mem/cache.hpp"
#include "mem/memory.hpp"

namespace rcpn::mem {

struct MemorySystemConfig {
  CacheConfig icache;
  CacheConfig dcache;
  bool enable_icache = true;
  bool enable_dcache = true;
};

class MemorySystem {
 public:
  explicit MemorySystem(const MemorySystemConfig& config = {});

  Memory& memory() { return mem_; }
  const Memory& memory() const { return mem_; }
  Cache& icache() { return icache_; }
  Cache& dcache() { return dcache_; }
  const Cache& icache() const { return icache_; }
  const Cache& dcache() const { return dcache_; }

  /// Timing of an instruction fetch at `pc` (cycles).
  std::uint32_t fetch_delay(std::uint32_t pc) {
    return config_.enable_icache ? icache_.access(pc, false) : 1;
  }
  /// Timing of a data access (cycles) — paper's mem.delay(addr).
  std::uint32_t data_delay(std::uint32_t addr, bool is_write) {
    return config_.enable_dcache ? dcache_.access(addr, is_write) : 1;
  }

  void reset_timing() {
    icache_.reset();
    dcache_.reset();
  }

 private:
  MemorySystemConfig config_;
  Memory mem_;
  Cache icache_;
  Cache dcache_;
};

}  // namespace rcpn::mem
