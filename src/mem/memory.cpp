#include "mem/memory.hpp"

#include <cstring>

namespace rcpn::mem {

namespace {
constexpr std::uint32_t page_id(std::uint32_t addr) { return addr >> Memory::kPageBits; }
constexpr std::uint32_t page_off(std::uint32_t addr) {
  return addr & (Memory::kPageSize - 1);
}
}  // namespace

const std::uint8_t* Memory::page_for_read(std::uint32_t addr) const {
  const std::uint32_t id = page_id(addr);
  if (id == last_page_id_) return last_page_;
  auto it = pages_.find(id);
  if (it == pages_.end()) return nullptr;
  last_page_id_ = id;
  last_page_ = it->second.get();
  return last_page_;
}

std::uint8_t* Memory::page_for_write(std::uint32_t addr) {
  const std::uint32_t id = page_id(addr);
  if (id == last_page_id_) return last_page_;
  auto& slot = pages_[id];
  if (!slot) {
    slot = std::make_unique<std::uint8_t[]>(kPageSize);
    std::memset(slot.get(), 0, kPageSize);
  }
  last_page_id_ = id;
  last_page_ = slot.get();
  return last_page_;
}

std::uint8_t Memory::read8(std::uint32_t addr) const {
  const std::uint8_t* p = page_for_read(addr);
  return p ? p[page_off(addr)] : 0;
}

std::uint16_t Memory::read16(std::uint32_t addr) const {
  addr &= ~1u;
  return static_cast<std::uint16_t>(read8(addr) | (read8(addr + 1) << 8));
}

std::uint32_t Memory::read32(std::uint32_t addr) const {
  addr &= ~3u;
  const std::uint8_t* p = page_for_read(addr);
  if (!p) return 0;
  const std::uint32_t off = page_off(addr);
  // Aligned word never crosses a page (page size is a multiple of 4).
  std::uint32_t v;
  std::memcpy(&v, p + off, 4);  // host is little-endian like ARM
  return v;
}

void Memory::write8(std::uint32_t addr, std::uint8_t v) {
  page_for_write(addr)[page_off(addr)] = v;
}

void Memory::write16(std::uint32_t addr, std::uint16_t v) {
  addr &= ~1u;
  write8(addr, static_cast<std::uint8_t>(v));
  write8(addr + 1, static_cast<std::uint8_t>(v >> 8));
}

void Memory::write32(std::uint32_t addr, std::uint32_t v) {
  addr &= ~3u;
  std::uint8_t* p = page_for_write(addr);
  std::memcpy(p + page_off(addr), &v, 4);
}

void Memory::load(std::uint32_t addr, std::span<const std::uint8_t> bytes) {
  for (std::size_t i = 0; i < bytes.size(); ++i)
    write8(addr + static_cast<std::uint32_t>(i), bytes[i]);
}

}  // namespace rcpn::mem
