#include "mem/memory_system.hpp"

namespace rcpn::mem {

MemorySystem::MemorySystem(const MemorySystemConfig& config)
    : config_(config), icache_(config.icache, "icache"), dcache_(config.dcache, "dcache") {}

}  // namespace rcpn::mem
