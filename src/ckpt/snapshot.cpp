#include "ckpt/snapshot.hpp"

#include <algorithm>
#include <utility>

#include "core/options_signature.hpp"
#include "obs/probe.hpp"

namespace rcpn::ckpt {

namespace {

constexpr std::string_view kVersion = "rcpn-ckpt/1";

void save_u64_vec(StateWriter& w, std::string_view name,
                  const std::vector<std::uint64_t>& v) {
  w.begin("vec").field("name", name).field("n", static_cast<std::uint64_t>(v.size()));
  std::string joined;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) joined.push_back(',');
    joined += std::to_string(v[i]);
  }
  w.field("v", std::string_view(joined)).end();
}

std::vector<std::uint64_t> read_u64_vec(StateReader& r, std::string_view name) {
  r.next("vec");
  if (r.get("name") != name)
    r.fail("expected vector '" + std::string(name) + "', found '" +
           std::string(r.get("name")) + "'");
  const std::uint64_t n = r.get_u64("n");
  std::vector<std::uint64_t> out;
  out.reserve(n);
  std::string_view v = r.has("v") ? r.get("v") : std::string_view{};
  while (!v.empty()) {
    const std::size_t comma = v.find(',');
    const std::string_view tok = comma == std::string_view::npos ? v : v.substr(0, comma);
    v = comma == std::string_view::npos ? std::string_view{} : v.substr(comma + 1);
    out.push_back(r.parse_u64(tok, "vector '" + std::string(name) + "' element"));
  }
  if (out.size() != n)
    r.fail("vector '" + std::string(name) + "' declares " + std::to_string(n) +
           " elements but carries " + std::to_string(out.size()));
  return out;
}

void restore_sized_u64_vec(StateReader& r, std::string_view name,
                           std::vector<std::uint64_t>& dst) {
  std::vector<std::uint64_t> v = read_u64_vec(r, name);
  if (v.size() != dst.size())
    r.fail("vector '" + std::string(name) + "' has " + std::to_string(v.size()) +
           " elements, the live model expects " + std::to_string(dst.size()));
  dst = std::move(v);
}

/// Verify one identity field; the error names the offender, desc-style.
void check_ident(std::string_view what, std::string_view got,
                 std::string_view want) {
  if (got != want)
    throw CkptError("checkpoint " + std::string(what) + " mismatch: snapshot has '" +
                    std::string(got) + "', the restoring run has '" +
                    std::string(want) + "'");
}

struct PendingTag {
  regfile::RegRef* ref = nullptr;
  std::string tag;
};

}  // namespace

std::string RefCoder::encode(const regfile::RegRef* r) const {
  if (r == nullptr) return "none";
  const auto it = to_key_.find(r);
  if (it == to_key_.end())
    throw CkptError("checkpoint: a register reference points outside the live "
                    "token set and cannot be serialized");
  return std::to_string(it->second >> 16) + ":" + std::to_string(it->second & 0xffff);
}

regfile::RegRef* RefCoder::decode(std::string_view tok, const StateReader& r) const {
  if (tok == "none") return nullptr;
  const std::size_t colon = tok.find(':');
  if (colon == std::string_view::npos)
    r.fail("malformed register reference '" + std::string(tok) + "'");
  const std::uint64_t seq = r.parse_u64(tok.substr(0, colon), "register-reference seq");
  const std::uint64_t idx = r.parse_u64(tok.substr(colon + 1), "register-reference index");
  const auto it = from_key_.find((seq << 16) | idx);
  if (it == from_key_.end())
    r.fail("register reference '" + std::string(tok) +
           "' does not name a restored operand");
  return it->second;
}

unsigned MachineIO::num_reg_refs(const core::InstructionToken&) const {
  return core::InstructionToken::kMaxOps;
}

regfile::RegRef* MachineIO::reg_ref(const core::InstructionToken& t, unsigned i) const {
  return dynamic_cast<regfile::RegRef*>(t.ops[i]);
}

std::string net_digest(const core::Net& net) {
  std::string s = net.name();
  s += '|';
  for (unsigned i = 0; i < net.num_stages(); ++i) {
    const core::PipelineStage& st = net.stage(static_cast<core::StageId>(i));
    s += st.name() + ":" + std::to_string(st.capacity()) + ";";
  }
  s += '|';
  for (unsigned i = 0; i < net.num_places(); ++i) {
    const core::Place& p = net.place(static_cast<core::PlaceId>(i));
    s += p.name + ":" + std::to_string(p.stage) + ":" + std::to_string(p.delay) + ";";
  }
  s += '|';
  for (unsigned i = 0; i < net.num_types(); ++i)
    s += net.type_name(static_cast<core::TypeId>(i)) + ";";
  s += '|';
  for (unsigned i = 0; i < net.num_transitions(); ++i)
    s += net.transition(static_cast<core::TransitionId>(i)).name() + ";";
  return fnv1a_hex(s);
}

std::string save_snapshot(core::Engine& eng, const MachineIO& io,
                          const std::vector<TraceEvent>& trace) {
  const core::Net& net = eng.net();
  if (eng.options().quiescence_skip)
    throw CkptError("model '" + net.name() +
                    "': cannot snapshot a run with quiescence_skip enabled — "
                    "resuming re-times the quiesced-cycle accounting, breaking "
                    "the byte-equality contract; run checkpointable workloads "
                    "with the skip off");

  // Enumerate the live tokens once: per stage, visible list then incoming
  // list, each in store (age) order — the order that defines candidate-scan
  // semantics, and the order restore reproduces.
  struct LiveToken {
    core::Token* t;
    core::StageId stage;
    bool incoming;
  };
  std::vector<LiveToken> live;
  for (unsigned s = 0; s < net.num_stages(); ++s) {
    const core::TokenStore& store = eng.token_store(static_cast<core::StageId>(s));
    for (core::Token* t : store.ptrs())
      live.push_back({t, static_cast<core::StageId>(s), false});
    for (core::Token* t : store.incoming_ptrs())
      live.push_back({t, static_cast<core::StageId>(s), true});
  }

  RefCoder refs;
  for (const LiveToken& lt : live) {
    if (lt.t->kind != core::TokenKind::instruction) continue;
    const auto* it = static_cast<const core::InstructionToken*>(lt.t);
    for (unsigned i = 0; i < io.num_reg_refs(*it); ++i)
      if (const regfile::RegRef* rr = io.reg_ref(*it, i)) refs.index(rr, it->seq, i);
  }

  StateWriter w;
  w.line(kVersion, "");
  w.begin("ident")
      .field("machine", io.machine_key())
      .field("model", net.name())
      .field("digest", net_digest(net))
      .field("workload", io.workload_id())
      .end();
  w.line("options", core::options_signature(eng.options()));

  const core::Engine::CkptScalars sc = eng.ckpt_scalars();
  w.begin("engine")
      .field("clock", sc.clock)
      .field("stopped", sc.stopped)
      .field("in_flight", sc.in_flight)
      .field("seq_counter", static_cast<std::uint64_t>(sc.seq_counter))
      .field("last_activity", sc.last_activity_clock)
      .field("activity_snapshot", sc.activity_snapshot)
      .field("quiesce_blocked", sc.quiesce_blocked)
      .end();

  const core::Stats& st = eng.stats();
  w.begin("stats")
      .field("cycles", st.cycles)
      .field("retired", st.retired)
      .field("fetched", st.fetched)
      .field("squashed", st.squashed)
      .field("reservations", st.reservations)
      .field("firings", st.firings)
      .field("quiesced", st.quiesced_cycles)
      .end();
  save_u64_vec(w, "transition_fires", st.transition_fires);
  save_u64_vec(w, "place_stalls", st.place_stalls);
  save_u64_vec(w, "place_stall_causes", st.place_stall_causes);

  w.begin("tokens").field("n", static_cast<std::uint64_t>(live.size())).end();
  for (const LiveToken& lt : live) {
    const core::Token* t = lt.t;
    w.begin("token")
        .field("stage", static_cast<std::uint64_t>(lt.stage))
        .field("incoming", lt.incoming)
        .field("kind", t->kind == core::TokenKind::instruction)
        .field("type", static_cast<std::int64_t>(t->type))
        .field("place", static_cast<std::int64_t>(t->place))
        .field("ready", t->ready)
        .field("delay", static_cast<std::uint64_t>(t->next_delay));
    if (t->kind == core::TokenKind::instruction) {
      const auto* it = static_cast<const core::InstructionToken*>(t);
      w.field("pc", it->pc)
          .field("raw", static_cast<std::uint64_t>(it->raw))
          .field("seq", static_cast<std::uint64_t>(it->seq))
          .field("state", static_cast<std::int64_t>(it->state))
          .field("in_flight", it->in_flight)
          .field("pool", it->pool_owned)
          .field("squashed", it->squashed);
    }
    w.end();
    if (t->kind != core::TokenKind::instruction) continue;
    const auto* it = static_cast<const core::InstructionToken*>(t);
    unsigned nrefs = 0;
    for (unsigned i = 0; i < io.num_reg_refs(*it); ++i)
      if (io.reg_ref(*it, i) != nullptr) ++nrefs;
    w.begin("ops").field("n", static_cast<std::uint64_t>(nrefs)).end();
    for (unsigned i = 0; i < io.num_reg_refs(*it); ++i) {
      const regfile::RegRef* rr = io.reg_ref(*it, i);
      if (rr == nullptr) continue;
      w.begin("op")
          .field("i", static_cast<std::uint64_t>(i))
          .field("value", static_cast<std::uint64_t>(rr->value()))
          .field("ready", rr->value_ready())
          .field("reserved", rr->reserved())
          .field("rseq", static_cast<std::uint64_t>(rr->reserve_seq()))
          .field("tag", refs.encode(rr->writer_tag()))
          .end();
    }
    io.save_token_extra(w, *it);
  }

  io.save_machine(w, refs);

  w.begin("trace").field("n", static_cast<std::uint64_t>(trace.size())).end();
  for (const TraceEvent& e : trace)
    w.begin("t")
        .token(std::to_string(e.cycle))
        .token(std::to_string(e.pc))
        .token(std::to_string(e.seq))
        .end();

  const obs::Hub* hub = eng.options().obs;
  w.begin("obs").field("attached", hub != nullptr).end();
  if (hub != nullptr) {
    const obs::StageProfile& p = hub->profile();
    w.begin("obsprofile").field("cycles", p.cycles).end();
    save_u64_vec(w, "obs_stall_causes", p.stall_causes);
    save_u64_vec(w, "obs_fires", p.fires);
    save_u64_vec(w, "obs_attempts", p.attempts);
    w.begin("occrows").field("n", static_cast<std::uint64_t>(p.occupancy_hist.size())).end();
    for (const auto& row : p.occupancy_hist) save_u64_vec(w, "occ", row);
    {
      std::vector<std::uint64_t> lo(hub->last_occ().begin(), hub->last_occ().end());
      save_u64_vec(w, "last_occ", lo);
    }
    const std::vector<obs::Event> evs = hub->sink().snapshot();
    w.begin("events")
        .field("n", static_cast<std::uint64_t>(evs.size()))
        .field("dropped", hub->sink().dropped())
        .end();
    for (const obs::Event& e : evs)
      w.begin("e")
          .token(std::to_string(e.cycle))
          .token(std::to_string(e.pc))
          .token(std::to_string(e.seq))
          .token(std::to_string(e.value))
          .token(std::to_string(e.place))
          .token(std::to_string(e.transition))
          .token(std::to_string(static_cast<unsigned>(e.kind)))
          .token(std::to_string(static_cast<unsigned>(e.cause)))
          .end();
  }
  w.line("end", "");
  return w.take();
}

void restore_snapshot(const std::string& text, core::Engine& eng, MachineIO& io,
                      std::vector<TraceEvent>& trace_out) {
  StateReader r(text);
  if (r.peek_kind() != kVersion)
    throw CkptError("checkpoint: unsupported format '" +
                    std::string(r.peek_kind().empty() ? std::string_view("<empty>")
                                                      : r.peek_kind()) +
                    "' (this build reads " + std::string(kVersion) + ")");
  r.next(kVersion);

  const core::Net& net = eng.net();
  r.next("ident");
  check_ident("machine", r.get("machine"), io.machine_key());
  check_ident("model", r.get("model"), net.name());
  if (r.get("digest") != net_digest(net))
    throw CkptError("checkpoint model digest mismatch for model '" + net.name() +
                    "': snapshot " + std::string(r.get("digest")) + " vs live " +
                    net_digest(net) +
                    " — the model structure changed since the snapshot was written");
  check_ident("workload", r.get("workload"), io.workload_id());

  r.next("options");
  {
    const std::string want = core::options_signature(eng.options());
    const std::string got =
        r.tokens().empty() ? std::string() : std::string(r.tokens().front());
    if (got != want)
      throw CkptError("checkpoint options-signature mismatch: snapshot was taken "
                      "under [" + got + "], the restoring engine runs [" + want + "]");
  }

  r.next("engine");
  core::Engine::CkptScalars sc;
  sc.clock = r.get_u64("clock");
  sc.stopped = r.get_bool("stopped");
  sc.in_flight = r.get_u64("in_flight");
  sc.seq_counter = static_cast<std::uint32_t>(r.get_u64("seq_counter"));
  sc.last_activity_clock = r.get_u64("last_activity");
  sc.activity_snapshot = r.get_u64("activity_snapshot");
  sc.quiesce_blocked = r.get_bool("quiesce_blocked");

  r.next("stats");
  core::Stats& st = eng.stats();
  st.cycles = r.get_u64("cycles");
  st.retired = r.get_u64("retired");
  st.fetched = r.get_u64("fetched");
  st.squashed = r.get_u64("squashed");
  st.reservations = r.get_u64("reservations");
  st.firings = r.get_u64("firings");
  st.quiesced_cycles = r.get_u64("quiesced");
  restore_sized_u64_vec(r, "transition_fires", st.transition_fires);
  restore_sized_u64_vec(r, "place_stalls", st.place_stalls);
  restore_sized_u64_vec(r, "place_stall_causes", st.place_stall_causes);

  r.next("tokens");
  const std::uint64_t ntok = r.get_u64("n");
  RefCoder refs;
  std::vector<PendingTag> pending;
  for (std::uint64_t k = 0; k < ntok; ++k) {
    r.next("token");
    const auto stage = static_cast<core::StageId>(r.get_i64("stage"));
    const bool incoming = r.get_bool("incoming");
    const bool is_instr = r.get_bool("kind");
    if (!is_instr) {
      core::Token* t = eng.ckpt_acquire_reservation();
      t->kind = core::TokenKind::reservation;
      t->type = static_cast<core::TypeId>(r.get_i64("type"));
      t->place = static_cast<core::PlaceId>(r.get_i64("place"));
      t->ready = r.get_u64("ready");
      t->next_delay = static_cast<std::uint32_t>(r.get_u64("delay"));
      eng.ckpt_insert_token(t, stage, incoming);
      continue;
    }
    const std::uint64_t pc = r.get_u64("pc");
    const auto raw = static_cast<std::uint32_t>(r.get_u64("raw"));
    core::InstructionToken* it = io.materialize(pc, raw);
    if (it == nullptr) it = eng.acquire_pooled_instruction();
    it->type = static_cast<core::TypeId>(r.get_i64("type"));
    it->place = static_cast<core::PlaceId>(r.get_i64("place"));
    it->ready = r.get_u64("ready");
    it->next_delay = static_cast<std::uint32_t>(r.get_u64("delay"));
    it->pc = pc;
    it->raw = raw;
    it->seq = static_cast<std::uint32_t>(r.get_u64("seq"));
    it->state = static_cast<core::PlaceId>(r.get_i64("state"));
    it->in_flight = r.get_bool("in_flight");
    it->squashed = r.get_bool("squashed");
    eng.ckpt_insert_token(it, stage, incoming);

    for (unsigned i = 0; i < io.num_reg_refs(*it); ++i)
      if (regfile::RegRef* rr = io.reg_ref(*it, i)) refs.admit(rr, it->seq, i);

    r.next("ops");
    const std::uint64_t nops = r.get_u64("n");
    for (std::uint64_t j = 0; j < nops; ++j) {
      r.next("op");
      const auto i = static_cast<unsigned>(r.get_u64("i"));
      regfile::RegRef* rr =
          i < io.num_reg_refs(*it) ? io.reg_ref(*it, i) : nullptr;
      if (rr == nullptr)
        r.fail("operand slot " + std::to_string(i) +
               " of the re-materialized token at pc=" + std::to_string(pc) +
               " is not a register reference");
      rr->ckpt_restore(static_cast<regfile::Word>(r.get_u64("value")),
                       r.get_bool("ready"), r.get_bool("reserved"),
                       static_cast<std::uint32_t>(r.get_u64("rseq")));
      const std::string tag = r.get_str("tag");
      if (tag != "none") pending.push_back({rr, tag});
    }
    io.restore_token_extra(r, *it);
  }
  for (const PendingTag& p : pending)
    p.ref->ckpt_set_writer_tag(refs.decode(p.tag, r));

  io.restore_machine(r, refs);

  r.next("trace");
  const std::uint64_t ntr = r.get_u64("n");
  trace_out.clear();
  trace_out.reserve(ntr);
  for (std::uint64_t k = 0; k < ntr; ++k) {
    r.next("t");
    if (r.tokens().size() != 3) r.fail("trace record needs 3 fields");
    TraceEvent e;
    e.cycle = r.parse_u64(r.tokens()[0], "trace cycle");
    e.pc = r.parse_u64(r.tokens()[1], "trace pc");
    e.seq = static_cast<std::uint32_t>(r.parse_u64(r.tokens()[2], "trace seq"));
    trace_out.push_back(e);
  }

  r.next("obs");
  if (r.get_bool("attached")) {
    obs::Hub* hub = eng.options().obs;
    const bool apply = hub != nullptr && hub->bound();
    r.next("obsprofile");
    const std::uint64_t pcycles = r.get_u64("cycles");
    std::vector<std::uint64_t> stall = read_u64_vec(r, "obs_stall_causes");
    std::vector<std::uint64_t> fires = read_u64_vec(r, "obs_fires");
    std::vector<std::uint64_t> attempts = read_u64_vec(r, "obs_attempts");
    r.next("occrows");
    const std::uint64_t nrows = r.get_u64("n");
    std::vector<std::vector<std::uint64_t>> rows;
    for (std::uint64_t i = 0; i < nrows; ++i) rows.push_back(read_u64_vec(r, "occ"));
    std::vector<std::uint64_t> last = read_u64_vec(r, "last_occ");
    r.next("events");
    const std::uint64_t nev = r.get_u64("n");
    const std::uint64_t dropped = r.get_u64("dropped");
    if (apply) {
      obs::StageProfile& p = hub->ckpt_profile();
      p.cycles = pcycles;
      if (stall.size() == p.stall_causes.size()) p.stall_causes = std::move(stall);
      if (fires.size() == p.fires.size()) p.fires = std::move(fires);
      if (attempts.size() == p.attempts.size()) p.attempts = std::move(attempts);
      if (rows.size() == p.occupancy_hist.size()) p.occupancy_hist = std::move(rows);
      for (std::size_t i = 0; i < last.size(); ++i)
        hub->ckpt_set_last_occ(i, static_cast<std::uint32_t>(last[i]));
      hub->sink().clear();
    }
    for (std::uint64_t k = 0; k < nev; ++k) {
      r.next("e");
      if (r.tokens().size() != 8) r.fail("event record needs 8 fields");
      if (!apply) continue;
      obs::Event e;
      e.cycle = r.parse_u64(r.tokens()[0], "event cycle");
      e.pc = r.parse_u64(r.tokens()[1], "event pc");
      e.seq = static_cast<std::uint32_t>(r.parse_u64(r.tokens()[2], "event seq"));
      e.value = static_cast<std::uint32_t>(r.parse_u64(r.tokens()[3], "event value"));
      {
        std::string_view t = r.tokens()[4];
        const bool neg = !t.empty() && t.front() == '-';
        if (neg) t.remove_prefix(1);
        const auto mag = static_cast<std::int64_t>(r.parse_u64(t, "event place"));
        e.place = static_cast<std::int16_t>(neg ? -mag : mag);
      }
      {
        std::string_view t = r.tokens()[5];
        const bool neg = !t.empty() && t.front() == '-';
        if (neg) t.remove_prefix(1);
        const auto mag = static_cast<std::int64_t>(r.parse_u64(t, "event transition"));
        e.transition = static_cast<std::int16_t>(neg ? -mag : mag);
      }
      e.kind = static_cast<obs::EventKind>(r.parse_u64(r.tokens()[6], "event kind"));
      e.cause = static_cast<core::StallCause>(r.parse_u64(r.tokens()[7], "event cause"));
      hub->sink().push(e);
    }
    if (apply) hub->sink().ckpt_set_dropped(dropped);
  }

  r.next("end");

  // Scalars last: materialization via the engine pool touches none of them,
  // but restoring them after all bookkeeping keeps this future-proof.
  eng.ckpt_restore_scalars(sc);
}

}  // namespace rcpn::ckpt
