// Checkpoint state I/O: the line-oriented text format rcpn-ckpt snapshots are
// written in, plus the strict sequential reader that parses them back.
//
// The format is deliberately shaped like src/desc/'s serialized models: a
// version tag on the first line, then whitespace-separated records of
// `kind key=value ...` fields. Errors mirror the desc:: style — every parse
// failure names the line number and the offending token, so a truncated or
// hand-edited snapshot fails loudly instead of resuming a half-restored run.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace rcpn::ckpt {

/// Thrown for every malformed, mismatched or unusable snapshot.
class CkptError : public std::runtime_error {
 public:
  explicit CkptError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only writer: records are lines of whitespace-separated fields.
class StateWriter {
 public:
  /// Start a new record line with a kind tag, e.g. begin("token").
  StateWriter& begin(std::string_view kind);
  /// Append one `key=value` field to the current record.
  StateWriter& field(std::string_view key, std::string_view value);
  StateWriter& field(std::string_view key, std::uint64_t value);
  StateWriter& field(std::string_view key, std::int64_t value);
  StateWriter& field(std::string_view key, bool value);
  /// Append a bare token (no key), e.g. a comma-joined counter vector.
  StateWriter& token(std::string_view value);
  /// Terminate the current record.
  StateWriter& end();

  /// Convenience: a whole `kind key=value` record in one call.
  void line(std::string_view kind, std::string_view rest);

  const std::string& text() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
  bool open_ = false;
};

/// Strict sequential reader. Each next() consumes one non-blank line and
/// verifies its kind tag; field accessors look keys up inside that record and
/// throw CkptError (naming line and key) when absent or malformed.
class StateReader {
 public:
  explicit StateReader(std::string_view text);

  /// True if any unconsumed record remains.
  bool more() const { return pos_ < lines_.size(); }
  /// Kind tag of the next record without consuming it ("" at end).
  std::string_view peek_kind() const;
  /// Consume the next record; throws unless its kind tag is `kind`.
  void next(std::string_view kind);

  // -- field access within the current record ---------------------------------
  /// The record's bare tokens after the kind tag (key=value fields included,
  /// verbatim), for list-shaped records.
  const std::vector<std::string_view>& tokens() const { return fields_; }
  std::string_view get(std::string_view key) const;
  std::string get_str(std::string_view key) const { return std::string(get(key)); }
  std::uint64_t get_u64(std::string_view key) const;
  std::int64_t get_i64(std::string_view key) const;
  bool get_bool(std::string_view key) const;
  bool has(std::string_view key) const;

  /// 1-based line number of the current record (error reporting).
  std::size_t line_number() const { return line_no_; }
  /// Build a CkptError message prefixed with the current position.
  [[noreturn]] void fail(const std::string& what) const;

  /// Parse helpers shared with record-level consumers.
  std::uint64_t parse_u64(std::string_view tok, std::string_view what) const;

 private:
  struct Line {
    std::string_view kind;
    std::vector<std::string_view> fields;
    std::size_t number = 0;
  };

  std::vector<Line> lines_;
  std::size_t pos_ = 0;
  std::vector<std::string_view> fields_;
  std::size_t line_no_ = 0;
};

/// FNV-1a over a byte string — the digest primitive the checkpoint layer
/// uses for model-structure and file-content fingerprints.
std::uint64_t fnv1a(std::string_view bytes);
/// 16-hex-digit rendering of fnv1a(bytes).
std::string fnv1a_hex(std::string_view bytes);

}  // namespace rcpn::ckpt
