#include "ckpt/state_io.hpp"

#include <cstdio>

namespace rcpn::ckpt {

StateWriter& StateWriter::begin(std::string_view kind) {
  if (open_) end();
  out_.append(kind);
  open_ = true;
  return *this;
}

StateWriter& StateWriter::field(std::string_view key, std::string_view value) {
  out_.push_back(' ');
  out_.append(key);
  out_.push_back('=');
  out_.append(value);
  return *this;
}

StateWriter& StateWriter::field(std::string_view key, std::uint64_t value) {
  return field(key, std::string_view(std::to_string(value)));
}

StateWriter& StateWriter::field(std::string_view key, std::int64_t value) {
  return field(key, std::string_view(std::to_string(value)));
}

StateWriter& StateWriter::field(std::string_view key, bool value) {
  return field(key, std::string_view(value ? "1" : "0"));
}

StateWriter& StateWriter::token(std::string_view value) {
  out_.push_back(' ');
  out_.append(value);
  return *this;
}

StateWriter& StateWriter::end() {
  out_.push_back('\n');
  open_ = false;
  return *this;
}

void StateWriter::line(std::string_view kind, std::string_view rest) {
  begin(kind);
  if (!rest.empty()) token(rest);
  end();
}

namespace {

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < s.size() && s[j] != ' ' && s[j] != '\t') ++j;
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

}  // namespace

StateReader::StateReader(std::string_view text) {
  std::size_t number = 0;
  std::string_view rest = text;
  while (!rest.empty()) {
    const std::size_t nl = rest.find('\n');
    std::string_view raw = nl == std::string_view::npos ? rest : rest.substr(0, nl);
    rest = nl == std::string_view::npos ? std::string_view{} : rest.substr(nl + 1);
    ++number;
    if (const std::size_t hash = raw.find('#'); hash != std::string_view::npos)
      raw = raw.substr(0, hash);
    std::vector<std::string_view> toks = split_ws(raw);
    if (toks.empty()) continue;
    Line l;
    l.kind = toks.front();
    l.fields.assign(toks.begin() + 1, toks.end());
    l.number = number;
    lines_.push_back(std::move(l));
  }
}

std::string_view StateReader::peek_kind() const {
  return pos_ < lines_.size() ? lines_[pos_].kind : std::string_view{};
}

void StateReader::next(std::string_view kind) {
  if (pos_ >= lines_.size())
    throw CkptError("checkpoint ended early: expected a '" + std::string(kind) +
                    "' record after line " + std::to_string(line_no_));
  const Line& l = lines_[pos_];
  if (l.kind != kind)
    throw CkptError("checkpoint line " + std::to_string(l.number) + ": expected a '" +
                    std::string(kind) + "' record, found '" + std::string(l.kind) + "'");
  fields_ = l.fields;
  line_no_ = l.number;
  ++pos_;
}

std::string_view StateReader::get(std::string_view key) const {
  for (std::string_view f : fields_) {
    const std::size_t eq = f.find('=');
    if (eq != std::string_view::npos && f.substr(0, eq) == key)
      return f.substr(eq + 1);
  }
  fail("missing field '" + std::string(key) + "'");
}

bool StateReader::has(std::string_view key) const {
  for (std::string_view f : fields_) {
    const std::size_t eq = f.find('=');
    if (eq != std::string_view::npos && f.substr(0, eq) == key) return true;
  }
  return false;
}

std::uint64_t StateReader::parse_u64(std::string_view tok, std::string_view what) const {
  std::uint64_t v = 0;
  if (tok.empty()) fail(std::string(what) + " is empty");
  for (const char c : tok) {
    if (c < '0' || c > '9')
      fail(std::string(what) + " '" + std::string(tok) + "' is not a number");
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

std::uint64_t StateReader::get_u64(std::string_view key) const {
  return parse_u64(get(key), "field '" + std::string(key) + "'");
}

std::int64_t StateReader::get_i64(std::string_view key) const {
  std::string_view tok = get(key);
  bool neg = false;
  if (!tok.empty() && tok.front() == '-') {
    neg = true;
    tok.remove_prefix(1);
  }
  const std::uint64_t mag = parse_u64(tok, "field '" + std::string(key) + "'");
  return neg ? -static_cast<std::int64_t>(mag) : static_cast<std::int64_t>(mag);
}

bool StateReader::get_bool(std::string_view key) const {
  const std::string_view tok = get(key);
  if (tok == "0") return false;
  if (tok == "1") return true;
  fail("field '" + std::string(key) + "' must be 0 or 1, got '" + std::string(tok) + "'");
}

void StateReader::fail(const std::string& what) const {
  throw CkptError("checkpoint line " + std::to_string(line_no_) + ": " + what);
}

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string fnv1a_hex(std::string_view bytes) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a(bytes)));
  return std::string(buf);
}

}  // namespace rcpn::ckpt
