#include "ckpt/components.hpp"

#include <algorithm>
#include <vector>

namespace rcpn::ckpt {

namespace {

constexpr char kHex[] = "0123456789abcdef";

std::string to_hex(const std::uint8_t* bytes, std::size_t n) {
  std::string out;
  out.reserve(n * 2);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(kHex[bytes[i] >> 4]);
    out.push_back(kHex[bytes[i] & 0xf]);
  }
  return out;
}

std::string to_hex(std::string_view s) {
  return to_hex(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::vector<std::uint8_t> from_hex(std::string_view s, const StateReader& r) {
  if (s.size() % 2 != 0) r.fail("hex payload has odd length");
  std::vector<std::uint8_t> out;
  out.reserve(s.size() / 2);
  for (std::size_t i = 0; i < s.size(); i += 2) {
    const int hi = hex_nibble(s[i]);
    const int lo = hex_nibble(s[i + 1]);
    if (hi < 0 || lo < 0) r.fail("hex payload contains a non-hex character");
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

}  // namespace

void save_register_file(StateWriter& w, const regfile::RegisterFile& rf,
                        const RefCoder& refs) {
  w.begin("regfile").field("cells", static_cast<std::uint64_t>(rf.num_cells())).end();
  for (unsigned c = 0; c < rf.num_cells(); ++c) {
    const auto cell = static_cast<regfile::CellId>(c);
    w.begin("cell")
        .field("data", static_cast<std::uint64_t>(rf.read_cell(cell)))
        .field("rseq", static_cast<std::uint64_t>(rf.reserve_seq(cell)))
        .field("cseq", static_cast<std::uint64_t>(rf.committed_seq(cell)))
        .field("writers", static_cast<std::uint64_t>(rf.num_writers(cell)));
    for (unsigned i = 0; i < rf.num_writers(cell); ++i)
      w.token(refs.encode(rf.writer(cell, i)));
    w.end();
  }
}

void restore_register_file(StateReader& r, regfile::RegisterFile& rf,
                           const RefCoder& refs) {
  r.next("regfile");
  const std::uint64_t n = r.get_u64("cells");
  if (n != rf.num_cells())
    r.fail("register file has " + std::to_string(rf.num_cells()) +
           " cells, snapshot carries " + std::to_string(n));
  rf.clear_writers();
  for (unsigned c = 0; c < rf.num_cells(); ++c) {
    const auto cell = static_cast<regfile::CellId>(c);
    r.next("cell");
    rf.write_cell(cell, static_cast<regfile::Word>(r.get_u64("data")));
    rf.set_reserve_seq(cell, static_cast<std::uint32_t>(r.get_u64("rseq")));
    rf.set_committed_seq(cell, static_cast<std::uint32_t>(r.get_u64("cseq")));
    const std::uint64_t writers = r.get_u64("writers");
    // Writer refs are the trailing bare tokens of the record (after the 4
    // key=value fields), in reservation-age order.
    const auto& toks = r.tokens();
    if (toks.size() != 4 + writers) r.fail("cell writer list is malformed");
    for (std::uint64_t i = 0; i < writers; ++i)
      rf.push_writer(cell, refs.decode(toks[4 + i], r));
  }
}

void save_cache(StateWriter& w, const mem::Cache& c) {
  const mem::CacheStats& st = c.stats();
  w.begin("cache")
      .field("name", c.name())
      .field("lines", static_cast<std::uint64_t>(c.num_lines()))
      .field("lru_clock", c.lru_clock())
      .field("accesses", st.accesses)
      .field("hits", st.hits)
      .field("misses", st.misses)
      .field("evictions", st.evictions)
      .field("writebacks", st.writebacks)
      .end();
  for (std::size_t i = 0; i < c.num_lines(); ++i) {
    const mem::Cache::CkptLine l = c.ckpt_line(i);
    // Cold lines dominate in short runs; elide them.
    if (!l.valid && l.lru == 0 && !l.dirty && l.tag == 0) continue;
    w.begin("line")
        .field("i", static_cast<std::uint64_t>(i))
        .field("tag", static_cast<std::uint64_t>(l.tag))
        .field("lru", l.lru)
        .field("valid", l.valid)
        .field("dirty", l.dirty)
        .end();
  }
  w.line("endcache", "");
}

void restore_cache(StateReader& r, mem::Cache& c) {
  r.next("cache");
  if (r.get_u64("lines") != c.num_lines())
    r.fail("cache '" + std::string(r.get("name")) + "' geometry mismatch");
  mem::CacheStats st;
  st.accesses = r.get_u64("accesses");
  st.hits = r.get_u64("hits");
  st.misses = r.get_u64("misses");
  st.evictions = r.get_u64("evictions");
  st.writebacks = r.get_u64("writebacks");
  const std::uint64_t lru_clock = r.get_u64("lru_clock");
  for (std::size_t i = 0; i < c.num_lines(); ++i)
    c.ckpt_set_line(i, mem::Cache::CkptLine{});
  while (r.peek_kind() == "line") {
    r.next("line");
    mem::Cache::CkptLine l;
    l.tag = static_cast<std::uint32_t>(r.get_u64("tag"));
    l.lru = r.get_u64("lru");
    l.valid = r.get_bool("valid");
    l.dirty = r.get_bool("dirty");
    const std::uint64_t i = r.get_u64("i");
    if (i >= c.num_lines()) r.fail("cache line index out of range");
    c.ckpt_set_line(i, l);
  }
  r.next("endcache");
  c.ckpt_restore_meta(lru_clock, st);
}

void save_memory(StateWriter& w, const mem::Memory& m) {
  std::vector<std::uint32_t> ids;
  ids.reserve(m.pages().size());
  for (const auto& [id, _] : m.pages()) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  w.begin("memory").field("pages", static_cast<std::uint64_t>(ids.size())).end();
  for (const std::uint32_t id : ids) {
    const std::uint8_t* bytes = m.pages().at(id).get();
    w.begin("page")
        .field("id", static_cast<std::uint64_t>(id))
        .field("bytes", to_hex(bytes, mem::Memory::kPageSize))
        .end();
  }
}

void restore_memory(StateReader& r, mem::Memory& m) {
  r.next("memory");
  const std::uint64_t n = r.get_u64("pages");
  m.clear();
  for (std::uint64_t k = 0; k < n; ++k) {
    r.next("page");
    const auto id = static_cast<std::uint32_t>(r.get_u64("id"));
    const std::vector<std::uint8_t> bytes = from_hex(r.get("bytes"), r);
    if (bytes.size() != mem::Memory::kPageSize) r.fail("memory page has wrong size");
    m.ckpt_set_page(id, bytes.data());
  }
}

void save_predictor(StateWriter& w, const predictor::BranchPredictor& p) {
  const predictor::PredictorStats& st = p.stats();
  const char* kind = "static";
  if (dynamic_cast<const predictor::Bimodal*>(&p) != nullptr) kind = "bimodal";
  if (dynamic_cast<const predictor::Btb*>(&p) != nullptr) kind = "btb";
  w.begin("predictor")
      .field("kind", std::string_view(kind))
      .field("lookups", st.lookups)
      .field("predicted_taken", st.predicted_taken)
      .field("updates", st.updates)
      .field("mispredicts", st.mispredicts)
      .end();
  if (const auto* bi = dynamic_cast<const predictor::Bimodal*>(&p)) {
    std::string joined;
    for (std::size_t i = 0; i < bi->counters().size(); ++i) {
      if (i) joined.push_back(',');
      joined += std::to_string(bi->counters()[i]);
    }
    w.begin("counters")
        .field("n", static_cast<std::uint64_t>(bi->counters().size()))
        .field("v", joined)
        .end();
  } else if (const auto* btb = dynamic_cast<const predictor::Btb*>(&p)) {
    w.begin("btb").field("n", static_cast<std::uint64_t>(btb->num_entries())).end();
    for (std::uint32_t i = 0; i < btb->num_entries(); ++i) {
      const predictor::Btb::CkptEntry e = btb->ckpt_entry(i);
      if (!e.valid && e.tag == 0 && e.target == 0 && e.counter == 0) continue;
      w.begin("btbent")
          .field("i", static_cast<std::uint64_t>(i))
          .field("tag", static_cast<std::uint64_t>(e.tag))
          .field("target", static_cast<std::uint64_t>(e.target))
          .field("counter", static_cast<std::uint64_t>(e.counter))
          .field("valid", e.valid)
          .end();
    }
    w.line("endbtb", "");
  }
}

void restore_predictor(StateReader& r, predictor::BranchPredictor& p) {
  r.next("predictor");
  predictor::PredictorStats st;
  st.lookups = r.get_u64("lookups");
  st.predicted_taken = r.get_u64("predicted_taken");
  st.updates = r.get_u64("updates");
  st.mispredicts = r.get_u64("mispredicts");
  const std::string kind = r.get_str("kind");
  p.ckpt_set_stats(st);
  if (kind == "bimodal") {
    auto* bi = dynamic_cast<predictor::Bimodal*>(&p);
    r.next("counters");
    const std::uint64_t n = r.get_u64("n");
    if (bi == nullptr || n != bi->counters().size())
      r.fail("bimodal predictor table mismatch");
    std::string_view v = r.has("v") ? r.get("v") : std::string_view{};
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::size_t comma = v.find(',');
      const std::string_view tok =
          comma == std::string_view::npos ? v : v.substr(0, comma);
      v = comma == std::string_view::npos ? std::string_view{} : v.substr(comma + 1);
      bi->ckpt_set_counter(static_cast<std::uint32_t>(i),
                           static_cast<std::uint8_t>(r.parse_u64(tok, "counter")));
    }
  } else if (kind == "btb") {
    auto* btb = dynamic_cast<predictor::Btb*>(&p);
    r.next("btb");
    if (btb == nullptr || r.get_u64("n") != btb->num_entries())
      r.fail("btb predictor table mismatch");
    for (std::uint32_t i = 0; i < btb->num_entries(); ++i)
      btb->ckpt_set_entry(i, predictor::Btb::CkptEntry{});
    while (r.peek_kind() == "btbent") {
      r.next("btbent");
      predictor::Btb::CkptEntry e;
      e.tag = static_cast<std::uint32_t>(r.get_u64("tag"));
      e.target = static_cast<std::uint32_t>(r.get_u64("target"));
      e.counter = static_cast<std::uint8_t>(r.get_u64("counter"));
      e.valid = r.get_bool("valid");
      const std::uint64_t i = r.get_u64("i");
      if (i >= btb->num_entries()) r.fail("btb entry index out of range");
      btb->ckpt_set_entry(static_cast<std::uint32_t>(i), e);
    }
    r.next("endbtb");
  }
}

void save_syscalls(StateWriter& w, const sys::SyscallHandler& s) {
  w.begin("syscalls")
      .field("exit_code", static_cast<std::int64_t>(s.exit_code()))
      .field("exited", s.exited())
      .field("calls", s.calls())
      .field("output", to_hex(s.output()))
      .end();
}

void restore_syscalls(StateReader& r, sys::SyscallHandler& s) {
  r.next("syscalls");
  const std::vector<std::uint8_t> out = from_hex(r.get("output"), r);
  s.ckpt_restore(std::string(out.begin(), out.end()),
                 static_cast<int>(r.get_i64("exit_code")), r.get_bool("exited"),
                 r.get_u64("calls"));
}

}  // namespace rcpn::ckpt
