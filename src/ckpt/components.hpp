// Shared machine-component serializers: every machine family owns some mix of
// register files, functional memory, timing caches, branch predictors and the
// syscall layer. MachineIO::save_machine/restore_machine implementations
// compose these helpers so each component's state is captured in exactly one
// place, for every machine and every backend.
#pragma once

#include "ckpt/snapshot.hpp"
#include "ckpt/state_io.hpp"
#include "mem/cache.hpp"
#include "mem/memory.hpp"
#include "predictor/predictor.hpp"
#include "regfile/register_file.hpp"
#include "sys/syscalls.hpp"

namespace rcpn::ckpt {

/// Cell data + reservation/commit sequencing + the in-flight writer stacks
/// (writers are serialized as RegRef cross-references, so token records must
/// precede the machine section — snapshot.cpp guarantees that order).
void save_register_file(StateWriter& w, const regfile::RegisterFile& rf,
                        const RefCoder& refs);
void restore_register_file(StateReader& r, regfile::RegisterFile& rf,
                           const RefCoder& refs);

void save_cache(StateWriter& w, const mem::Cache& c);
void restore_cache(StateReader& r, mem::Cache& c);

/// Resident pages, dumped whole in ascending page-id order (hex bytes).
void save_memory(StateWriter& w, const mem::Memory& m);
void restore_memory(StateReader& r, mem::Memory& m);

void save_predictor(StateWriter& w, const predictor::BranchPredictor& p);
void restore_predictor(StateReader& r, predictor::BranchPredictor& p);

void save_syscalls(StateWriter& w, const sys::SyscallHandler& s);
void restore_syscalls(StateReader& r, sys::SyscallHandler& s);

}  // namespace rcpn::ckpt
