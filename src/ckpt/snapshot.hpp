// Engine-state snapshotting and deterministic resume (ROADMAP #5).
//
// A snapshot captures the complete dynamic state of a run at a cycle
// boundary: the engine scalars and Stats (including quiesced-cycle and
// stall-cause accounting), every live token with its per-stage list position
// (visible vs not-yet-promoted incoming), the operand/reservation state of
// the three-level register model, the machine context (register cells,
// memories, caches, predictors, syscall capture, workload cursors) and the
// retire-trace prefix produced so far. Restoring it into a freshly loaded
// machine and continuing is byte-identical — trace, stats and (when attached)
// obs event stream — to never having stopped, on every backend; the engine
// base class owns all dynamic state, which is what makes one snapshot format
// valid for interpreted, compiled, generated(linked) and freestanding runs
// alike.
//
// Format: versioned text ("rcpn-ckpt/1", see docs/ckpt-format.md), written
// and parsed by ckpt::StateWriter/StateReader. Restore strictly verifies the
// snapshot identity — format version, machine key, model name, structural
// model digest, schedule-options signature, workload id — and rejects any
// mismatch with a CkptError naming the offender, mirroring src/desc/'s error
// style. The backend is deliberately NOT part of the identity: all backends
// share the engine-base state, so a snapshot written by the linked build
// restores into a freestanding binary (and vice versa).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ckpt/state_io.hpp"
#include "core/engine.hpp"
#include "regfile/reg_ref.hpp"

namespace rcpn::ckpt {

/// One retirement of the trace prefix embedded in a snapshot (mirrors
/// machines::GoldenRetireEvent without depending on the machines layer).
struct TraceEvent {
  std::uint64_t cycle = 0;
  std::uint64_t pc = 0;
  std::uint32_t seq = 0;
};

/// Cross-reference coder for RegRef pointers. Live pointers are meaningless
/// across processes, so every RegRef reachable from a live instruction token
/// is addressed as (owning token's seq, enumeration index within that token)
/// — decode order is deterministic, so the pair re-identifies the same
/// operand object after re-materialization.
class RefCoder {
 public:
  void index(const regfile::RegRef* r, std::uint32_t seq, unsigned idx) {
    to_key_[r] = (static_cast<std::uint64_t>(seq) << 16) | idx;
  }
  void admit(regfile::RegRef* r, std::uint32_t seq, unsigned idx) {
    from_key_[(static_cast<std::uint64_t>(seq) << 16) | idx] = r;
  }
  /// "none" or "seq:idx".
  std::string encode(const regfile::RegRef* r) const;
  /// Inverse of encode(); errors through `r.fail` on an unresolvable ref.
  regfile::RegRef* decode(std::string_view tok, const StateReader& r) const;

 private:
  std::unordered_map<const regfile::RegRef*, std::uint64_t> to_key_;
  std::unordered_map<std::uint64_t, regfile::RegRef*> from_key_;
};

/// Per-machine serialization hook: what the engine cannot see. One
/// implementation per machine family, usually provided by the machine's
/// golden session (machines/*.cpp).
class MachineIO {
 public:
  virtual ~MachineIO() = default;

  /// Stable machine-family key ("fig5", "fuzz-7", ...) — snapshot identity.
  virtual std::string machine_key() const = 0;
  /// Identifies the loaded workload ("golden", "crc:1", ...) — snapshot
  /// identity: restore requires the same workload to be loaded first.
  virtual std::string workload_id() const = 0;

  /// Serialize / restore the machine context (registers, memory, caches,
  /// predictors, workload cursors). Called after the token records, so
  /// restore_machine may resolve RegRef cross-references via `refs`.
  virtual void save_machine(StateWriter& w, const RefCoder& refs) const = 0;
  virtual void restore_machine(StateReader& r, const RefCoder& refs) = 0;

  /// Re-materialize the static instruction at (pc, raw): decode-cache
  /// machines return dcache.get(pc, raw) — re-decoding is deterministic, so
  /// payload and operand binding come back identical. Return nullptr for
  /// pooled plain tokens; the snapshot layer then acquires from the engine
  /// pool. Called in ascending-seq order (original decode order), so clone
  /// chains for multiply-in-flight static instructions rebuild identically.
  virtual core::InstructionToken* materialize(std::uint64_t pc, std::uint32_t raw) {
    (void)pc;
    (void)raw;
    return nullptr;
  }

  /// Dynamic payload state beyond the core token fields (e.g. an ARM
  /// instruction's resolved/nullified/effective-address latches). Writes and
  /// reads a machine-defined, fixed-shape set of records per token.
  virtual void save_token_extra(StateWriter& w, const core::InstructionToken& t) const {
    (void)w;
    (void)t;
  }
  virtual void restore_token_extra(StateReader& r, core::InstructionToken& t) {
    (void)r;
    (void)t;
  }

  /// Stable enumeration of the RegRefs a token owns. Default: the RegRef
  /// slots of ops[]. Machines holding out-of-band references (ARM
  /// register-list transfers) override with a superset enumeration.
  virtual unsigned num_reg_refs(const core::InstructionToken& t) const;
  /// The i-th enumerated RegRef, or nullptr for non-RegRef slots.
  virtual regfile::RegRef* reg_ref(const core::InstructionToken& t, unsigned i) const;
};

/// Structural digest of a lowered net: stages (name, capacity), places
/// (name, stage, delay), types and transitions. Restore refuses a snapshot
/// whose model structure changed since it was written.
std::string net_digest(const core::Net& net);

/// Serialize the complete dynamic state of `eng` + `io`'s machine, with
/// `trace` as the retire-trace prefix. The engine must be between cycles
/// (not inside step()/run()). Throws CkptError when options.quiescence_skip
/// is enabled: the skip re-times quiesced-cycle accounting across a resume
/// boundary, so snapshots of such runs would not satisfy the byte-equality
/// contract.
std::string save_snapshot(core::Engine& eng, const MachineIO& io,
                          const std::vector<TraceEvent>& trace);

/// Restore `text` into `eng`/`io`. The caller must have re-created the run
/// context first (machine constructed, same workload loaded, engine reset) —
/// exactly what Simulator::load does. Verifies the snapshot identity and
/// throws CkptError naming the offending field on any mismatch. On success
/// the embedded trace prefix is returned through `trace_out`.
void restore_snapshot(const std::string& text, core::Engine& eng, MachineIO& io,
                      std::vector<TraceEvent>& trace_out);

}  // namespace rcpn::ckpt
